"""Generator AST: renders to mini-C and evaluates under reference semantics.

Every construct exists in exactly two forms that must agree: ``render``
produces mini-C source the toolchain compiles, and the evaluator in
:class:`Evaluator` computes the same program directly in Python with the
platform's data model (16-bit words, wrapping arithmetic, shift counts
masked to 0-15, ``char`` unsigned). The evaluator is the differential
runner's reference implementation -- it never touches the simulator, so
a disagreement implicates the toolchain or a cache runtime, not the
oracle.

To keep the two semantics provably aligned the language is restricted
to the unambiguous core of mini-C:

* every variable is ``unsigned`` (16-bit) except ``for``-loop counters,
  whose values stay below 0x8000 so signedness cannot matter;
* expressions are pure -- assignment, ``++`` and calls never nest
  inside other expressions, so C's unspecified evaluation order is
  irrelevant (calls appear only as a whole statement or the sole RHS
  of an assignment);
* divisors are forced non-zero by construction (``expr | 1``), and
  shift counts are masked to 0-15 at the AST level;
* loops have structurally bounded trip counts and recursion decreases
  an explicit depth parameter, so every program terminates.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

MASK = 0xFFFF


class ReferenceError_(Exception):
    """The reference evaluator hit something the generator must prevent."""


# -- expressions ---------------------------------------------------------------


@dataclass
class Const:
    value: int

    def render(self):
        return str(self.value & MASK)


@dataclass
class Var:
    """A local variable or parameter."""

    name: str

    def render(self):
        return self.name


@dataclass
class GVar:
    """A global scalar."""

    name: str

    def render(self):
        return self.name


@dataclass
class Load:
    """``array[index]`` on a global array; the index must be in range."""

    array: str
    index: object

    def render(self):
        return f"{self.array}[{self.index.render()}]"


@dataclass
class Unary:
    op: str  # '-', '~', '!'
    operand: object

    def render(self):
        return f"({self.op}{self.operand.render()})"


@dataclass
class Binary:
    """A binary operator, rendered with **unsigned semantics pinned**.

    C's usual arithmetic conversions pick signed semantics only when
    both operands are signed; casting the left operand to ``unsigned``
    therefore forces every division, modulo, right shift and comparison
    to the unsigned behaviour the reference evaluator implements,
    regardless of what int-typed literals or loop counters appear in
    the operands.
    """

    op: str  # arithmetic/bitwise/shift/relational/logical
    left: object
    right: object

    def render(self):
        return f"(((unsigned){self.left.render()}) {self.op} {self.right.render()})"


@dataclass
class Cond:
    """The ternary operator ``c ? t : f``."""

    cond: object
    then: object
    other: object

    def render(self):
        return (
            f"({self.cond.render()} ? {self.then.render()}"
            f" : {self.other.render()})"
        )


@dataclass
class Call:
    func: str
    args: List[object]

    def render(self):
        return f"{self.func}({', '.join(a.render() for a in self.args)})"


# -- statements ----------------------------------------------------------------


@dataclass
class Decl:
    """``unsigned name = init;`` (loop counters declare their own)."""

    name: str
    init: object

    def render(self, indent):
        return [f"{indent}unsigned {self.name} = {self.init.render()};"]


@dataclass
class Assign:
    """``target op value;`` where op is '=' or a compound form."""

    target: object  # Var | GVar | Load
    op: str  # '=', '+=', '-=', '^=', '&=', '|='
    value: object

    def render(self, indent):
        return [f"{indent}{self.target.render()} {self.op} {self.value.render()};"]


@dataclass
class CallStmt:
    """A call executed for its side effects: ``f(a, b);``."""

    call: Call

    def render(self, indent):
        return [f"{indent}{self.call.render()};"]


@dataclass
class If:
    cond: object
    then: List[object]
    other: Optional[List[object]] = None

    def render(self, indent):
        lines = [f"{indent}if ({self.cond.render()}) {{"]
        lines += render_block(self.then, indent + "    ")
        if self.other:
            lines.append(f"{indent}}} else {{")
            lines += render_block(self.other, indent + "    ")
        lines.append(f"{indent}}}")
        return lines


@dataclass
class For:
    """``for (int var = 0; var < bound; var++)`` with a constant bound."""

    var: str
    bound: int
    body: List[object] = field(default_factory=list)

    def render(self, indent):
        lines = [
            f"{indent}for (int {self.var} = 0; "
            f"{self.var} < {self.bound}; {self.var}++) {{"
        ]
        lines += render_block(self.body, indent + "    ")
        lines.append(f"{indent}}}")
        return lines


@dataclass
class DoWhile:
    """A counted do/while: runs ``bound`` times (bound >= 1)."""

    var: str
    bound: int
    body: List[object] = field(default_factory=list)

    def render(self, indent):
        inner = indent + "    "
        lines = [f"{indent}{{", f"{inner}unsigned {self.var} = 0;", f"{inner}do {{"]
        lines += render_block(self.body, inner + "    ")
        lines.append(f"{inner}    {self.var} = {self.var} + 1;")
        lines.append(f"{inner}}} while ({self.var} < {self.bound});")
        lines.append(f"{indent}}}")
        return lines


@dataclass
class Case:
    value: int
    body: List[object] = field(default_factory=list)
    has_break: bool = True  # False = deliberate C fallthrough


@dataclass
class Switch:
    sel: object
    cases: List[Case] = field(default_factory=list)
    default: Optional[List[object]] = None

    def render(self, indent):
        inner = indent + "    "
        lines = [f"{indent}switch ({self.sel.render()}) {{"]
        for case in self.cases:
            lines.append(f"{indent}case {case.value}:")
            lines += render_block(case.body, inner)
            if case.has_break:
                lines.append(f"{inner}break;")
        if self.default is not None:
            lines.append(f"{indent}default:")
            lines += render_block(self.default, inner)
        lines.append(f"{indent}}}")
        return lines


@dataclass
class Return:
    value: object

    def render(self, indent):
        return [f"{indent}return {self.value.render()};"]


@dataclass
class DebugOut:
    value: object

    def render(self, indent):
        return [f"{indent}__debug_out({self.value.render()});"]


def render_block(stmts, indent):
    lines = []
    for stmt in stmts:
        lines += stmt.render(indent)
    return lines


# -- top level -----------------------------------------------------------------


@dataclass
class GlobalArray:
    name: str
    ctype: str  # 'unsigned' | 'unsigned char'
    values: List[int]  # initial values; all-zero + not const -> bss
    const: bool = False

    @property
    def element_bytes(self):
        return 1 if "char" in self.ctype else 2

    @property
    def element_mask(self):
        return 0xFF if "char" in self.ctype else MASK

    @property
    def is_bss(self):
        return not self.const and not any(self.values)

    def render(self):
        if self.is_bss:
            return f"{self.ctype} {self.name}[{len(self.values)}];"
        prefix = "const " if self.const else ""
        body = ", ".join(str(v) for v in self.values)
        return f"{prefix}{self.ctype} {self.name}[{len(self.values)}] = {{ {body} }};"


@dataclass
class GlobalScalar:
    name: str
    value: int

    def render(self):
        return f"unsigned {self.name} = {self.value & MASK};"


@dataclass
class FunctionDef:
    name: str
    params: List[str]
    body: List[object] = field(default_factory=list)

    def render(self):
        if self.name == "main":
            head = "int main(void) {"
        else:
            args = ", ".join(f"unsigned {p}" for p in self.params) or "void"
            head = f"unsigned {self.name}({args}) {{"
        return "\n".join([head] + render_block(self.body, "    ") + ["}"])


@dataclass
class GenProgram:
    """A generated program: globals + functions (main last)."""

    seed: int
    arrays: List[GlobalArray] = field(default_factory=list)
    scalars: List[GlobalScalar] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)  # main included, last

    def render(self):
        parts = [f"/* difftest program, seed {self.seed} */"]
        parts += [a.render() for a in self.arrays]
        parts += [s.render() for s in self.scalars]
        parts += [f.render() for f in self.functions]
        return "\n\n".join(parts) + "\n"

    def function(self, name):
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def mutable_arrays(self):
        return [a for a in self.arrays if not a.const]

    def evaluate(self, max_steps=2_000_000):
        return Evaluator(self, max_steps=max_steps).run()


# -- reference evaluation ------------------------------------------------------


@dataclass
class RefResult:
    """What the reference evaluator observed."""

    debug_words: List[int]
    arrays: dict  # name -> final list of element values
    scalars: dict  # name -> final value
    steps: int


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _BreakSignal(Exception):
    pass


def _as_bool(value):
    return 1 if value else 0


class Evaluator:
    """Executes a :class:`GenProgram` under the 16-bit reference semantics."""

    def __init__(self, program, max_steps=2_000_000):
        self.program = program
        self.max_steps = max_steps
        self.steps = 0
        self.debug = []
        self.arrays = {a.name: list(a.values) for a in program.arrays}
        self.array_meta = {a.name: a for a in program.arrays}
        self.scalars = {s.name: s.value & MASK for s in program.scalars}
        self.functions = {f.name: f for f in program.functions}

    def run(self):
        main = self.functions["main"]
        try:
            self.exec_block(main.body, {})
        except _ReturnSignal:
            pass
        return RefResult(
            debug_words=list(self.debug),
            arrays={name: list(vals) for name, vals in self.arrays.items()},
            scalars=dict(self.scalars),
            steps=self.steps,
        )

    def _tick(self, n=1):
        self.steps += n
        if self.steps > self.max_steps:
            raise ReferenceError_(
                f"reference evaluation exceeded {self.max_steps} steps"
            )

    # -- statements ------------------------------------------------------------

    def exec_block(self, stmts, frame):
        for stmt in stmts:
            self.exec_stmt(stmt, frame)

    def exec_stmt(self, stmt, frame):
        self._tick()
        kind = type(stmt)
        if kind is Decl:
            frame[stmt.name] = self.eval(stmt.init, frame)
        elif kind is Assign:
            value = self.eval(stmt.value, frame)
            self._store(stmt.target, stmt.op, value, frame)
        elif kind is CallStmt:
            self.eval(stmt.call, frame)
        elif kind is If:
            if self.eval(stmt.cond, frame):
                self.exec_block(stmt.then, frame)
            elif stmt.other:
                self.exec_block(stmt.other, frame)
        elif kind is For:
            for i in range(stmt.bound):
                frame[stmt.var] = i
                self.exec_block(stmt.body, frame)
        elif kind is DoWhile:
            for i in range(max(stmt.bound, 1)):
                frame[stmt.var] = i
                self.exec_block(stmt.body, frame)
        elif kind is Switch:
            self._exec_switch(stmt, frame)
        elif kind is Return:
            raise _ReturnSignal(self.eval(stmt.value, frame))
        elif kind is DebugOut:
            self.debug.append(self.eval(stmt.value, frame))
        else:
            raise ReferenceError_(f"unknown statement {stmt!r}")

    def _exec_switch(self, stmt, frame):
        sel = self.eval(stmt.sel, frame)
        taken = False
        try:
            for case in stmt.cases:
                if taken or (case.value & MASK) == sel:
                    taken = True
                    self.exec_block(case.body, frame)
                    if case.has_break:
                        raise _BreakSignal()
            if not taken and stmt.default is not None:
                self.exec_block(stmt.default, frame)
        except _BreakSignal:
            pass

    def _store(self, target, op, value, frame):
        kind = type(target)
        if kind is Var:
            current = frame.get(target.name, 0)
            frame[target.name] = self._apply(op, current, value) & MASK
        elif kind is GVar:
            current = self.scalars[target.name]
            self.scalars[target.name] = self._apply(op, current, value) & MASK
        elif kind is Load:
            meta = self.array_meta[target.array]
            if meta.const:
                raise ReferenceError_(f"store to const array {target.array}")
            index = self.eval(target.index, frame)
            if not 0 <= index < len(meta.values):
                raise ReferenceError_(
                    f"index {index} out of range for {target.array}"
                )
            current = self.arrays[target.array][index]
            self.arrays[target.array][index] = (
                self._apply(op, current, value) & meta.element_mask
            )
        else:
            raise ReferenceError_(f"bad assignment target {target!r}")

    @staticmethod
    def _apply(op, current, value):
        if op == "=":
            return value
        if op == "+=":
            return current + value
        if op == "-=":
            return current - value
        if op == "^=":
            return current ^ value
        if op == "&=":
            return current & value
        if op == "|=":
            return current | value
        raise ReferenceError_(f"bad compound op {op!r}")

    # -- expressions -----------------------------------------------------------

    def eval(self, expr, frame):
        self._tick()
        kind = type(expr)
        if kind is Const:
            return expr.value & MASK
        if kind is Var:
            return frame[expr.name] & MASK
        if kind is GVar:
            return self.scalars[expr.name]
        if kind is Load:
            meta = self.array_meta[expr.array]
            index = self.eval(expr.index, frame)
            if not 0 <= index < len(meta.values):
                raise ReferenceError_(f"index {index} out of range for {expr.array}")
            return self.arrays[expr.array][index]
        if kind is Unary:
            value = self.eval(expr.operand, frame)
            if expr.op == "-":
                return (-value) & MASK
            if expr.op == "~":
                return (~value) & MASK
            if expr.op == "!":
                return _as_bool(value == 0)
            raise ReferenceError_(f"bad unary {expr.op!r}")
        if kind is Binary:
            return self._binary(expr, frame)
        if kind is Cond:
            if self.eval(expr.cond, frame):
                return self.eval(expr.then, frame)
            return self.eval(expr.other, frame)
        if kind is Call:
            return self.call(expr.func, [self.eval(a, frame) for a in expr.args])
        raise ReferenceError_(f"unknown expression {expr!r}")

    def _binary(self, expr, frame):
        op = expr.op
        if op == "&&":
            return _as_bool(self.eval(expr.left, frame) and self.eval(expr.right, frame))
        if op == "||":
            return _as_bool(self.eval(expr.left, frame) or self.eval(expr.right, frame))
        left = self.eval(expr.left, frame)
        right = self.eval(expr.right, frame)
        if op == "+":
            return (left + right) & MASK
        if op == "-":
            return (left - right) & MASK
        if op == "*":
            return (left * right) & MASK
        if op == "/":
            if right == 0:
                raise ReferenceError_("division by zero reached the evaluator")
            return left // right
        if op == "%":
            if right == 0:
                raise ReferenceError_("modulo by zero reached the evaluator")
            return left % right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return (left << (right & 15)) & MASK
        if op == ">>":
            return left >> (right & 15)
        if op == "<":
            return _as_bool(left < right)
        if op == "<=":
            return _as_bool(left <= right)
        if op == ">":
            return _as_bool(left > right)
        if op == ">=":
            return _as_bool(left >= right)
        if op == "==":
            return _as_bool(left == right)
        if op == "!=":
            return _as_bool(left != right)
        raise ReferenceError_(f"bad binary {op!r}")

    def call(self, name, args):
        func = self.functions.get(name)
        if func is None:
            raise ReferenceError_(f"call to unknown function {name!r}")
        if len(args) != len(func.params):
            raise ReferenceError_(f"arity mismatch calling {name!r}")
        frame = {p: a & MASK for p, a in zip(func.params, args)}
        try:
            self.exec_block(func.body, frame)
        except _ReturnSignal as signal:
            return signal.value & MASK
        raise ReferenceError_(f"function {name!r} fell off its end")


# -- generic AST traversal (used by the shrinker) ------------------------------

_EXPR_FIELDS: dict = {
    Decl: ("init",),
    Assign: ("value",),
    If: ("cond",),
    Switch: ("sel",),
    Return: ("value",),
    DebugOut: ("value",),
}

_CHILD_BLOCKS: dict = {
    If: ("then", "other"),
    For: ("body",),
    DoWhile: ("body",),
}


def statement_blocks(stmt) -> List[Tuple[object, str, List[object]]]:
    """Nested statement lists of *stmt* as (owner, attr, list) triples."""
    blocks = []
    for attr in _CHILD_BLOCKS.get(type(stmt), ()):
        block = getattr(stmt, attr)
        if block:
            blocks.append((stmt, attr, block))
    if type(stmt) is Switch:
        for case in stmt.cases:
            if case.body:
                blocks.append((case, "body", case.body))
        if stmt.default:
            blocks.append((stmt, "default", stmt.default))
    return blocks


def iter_expressions(stmt):
    """Yield the top-level expressions of *stmt* (not of nested blocks)."""
    for attr in _EXPR_FIELDS.get(type(stmt), ()):
        yield stmt, attr, getattr(stmt, attr)
    if type(stmt) is Assign and type(stmt.target) is Load:
        yield stmt.target, "index", stmt.target.index


def expression_children(expr):
    """(owner, key, child) triples for the sub-expressions of *expr*."""
    kind = type(expr)
    if kind is Unary:
        return [(expr, "operand", expr.operand)]
    if kind is Binary:
        return [(expr, "left", expr.left), (expr, "right", expr.right)]
    if kind is Cond:
        return [
            (expr, "cond", expr.cond),
            (expr, "then", expr.then),
            (expr, "other", expr.other),
        ]
    if kind is Call:
        return [(expr.args, i, a) for i, a in enumerate(expr.args)]
    if kind is Load:
        return [(expr, "index", expr.index)]
    return []


def called_functions(program):
    """name -> number of static call sites across the whole program."""
    counts: dict = {}

    def visit_expr(expr):
        if type(expr) is Call:
            counts[expr.func] = counts.get(expr.func, 0) + 1
        for _, _, child in expression_children(expr):
            visit_expr(child)

    def visit_block(block):
        for stmt in block:
            for _, _, expr in iter_expressions(stmt):
                visit_expr(expr)
            if type(stmt) is CallStmt:
                visit_expr(stmt.call)
            for _, _, inner in statement_blocks(stmt):
                visit_block(inner)

    for func in program.functions:
        visit_block(func.body)
    return counts
