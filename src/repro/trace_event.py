"""Shared Chrome/Perfetto ``trace_event`` helpers.

Every Perfetto exporter in the repo -- the guest-run exporter in
:mod:`repro.obs.perfetto`, the orchestration-plane exporter in
:mod:`repro.tracing.perfetto` and the cache-analytics exporter in
:mod:`repro.analysis.report` -- speaks the JSON-object flavour of the
Trace Event Format that both ``chrome://tracing`` and
https://ui.perfetto.dev load directly. This module is the single home
for the format-level pieces they all need:

* :func:`validate_trace` -- the schema check shared by the unit tests,
  the CLIs (which refuse to write an invalid trace) and the CI smoke
  jobs;
* :func:`track_name_problems` -- the naming audit that keeps tracks
  from rendering as bare integers in the Perfetto UI;
* :func:`write_trace` -- validate-then-write, so no caller ever ships
  a trace Perfetto would reject;
* :func:`metadata_events` -- the ``process_name``/``thread_name`` "M"
  records every exporter opens its event list with.

The exporters themselves stay domain-specific; only the format
knowledge lives here.
"""

import json
from pathlib import Path


def metadata_events(pid, process_name, threads=None):
    """``M`` metadata records naming one process and its threads.

    *threads* maps tid -> track name. Emitted in sorted tid order so
    exporters that build their event list from this helper stay
    byte-deterministic.
    """
    events = [
        {"ph": "M", "pid": pid, "name": "process_name",
         "args": {"name": process_name}},
    ]
    for tid in sorted(threads or {}):
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
             "args": {"name": threads[tid]}}
        )
    return events


def validate_trace(trace):
    """Schema-check a trace object; returns a list of problems (empty = ok).

    Checks the invariants Perfetto's importer relies on: required keys
    per phase, per-thread timestamp monotonicity for duration events,
    and properly nested, name-matched B/E pairs.
    """
    problems = []
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        return ["trace is not an object with a traceEvents list"]
    stacks = {}  # tid -> [name, ...]
    last_ts = {}  # tid -> ts
    for index, event in enumerate(trace["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("B", "E", "i", "C", "M", "X"):
            problems.append(f"event {index}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
            problems.append(f"event {index}: missing/negative ts")
            continue
        if "pid" not in event:
            problems.append(f"event {index}: missing pid")
        if ph in ("B", "E", "i", "X"):
            tid = event.get("tid")
            if tid is None:
                problems.append(f"event {index}: missing tid")
                continue
            previous = last_ts.get(tid)
            if previous is not None and event["ts"] < previous:
                problems.append(
                    f"event {index}: ts {event['ts']} < previous "
                    f"{previous} on tid {tid}"
                )
            last_ts[tid] = event["ts"]
        if ph in ("B", "i", "C", "X") and not event.get("name"):
            problems.append(f"event {index}: missing name")
        if ph == "B":
            stacks.setdefault(tid, []).append(event.get("name"))
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if not stack:
                problems.append(f"event {index}: E without matching B")
            else:
                opened = stack.pop()
                name = event.get("name")
                if name and name != opened:
                    problems.append(
                        f"event {index}: E name {name!r} does not match "
                        f"open B {opened!r}"
                    )
        elif ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"event {index}: counter without args")
    for tid, stack in stacks.items():
        if stack:
            problems.append(f"tid {tid}: {len(stack)} unclosed B event(s)")
    return problems


def track_name_problems(trace):
    """Tracks that would render as bare integers in the Perfetto UI.

    Every pid that emits events must carry a ``process_name`` "M"
    metadata event, and every (pid, tid) pair used by duration/instant
    events a ``thread_name`` one. Returns a sorted list of problem
    strings (empty = every track is named).
    """
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        return ["trace is not an object with a traceEvents list"]
    named_processes = set()
    named_threads = set()
    for event in trace["traceEvents"]:
        if not isinstance(event, dict) or event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            named_processes.add(event.get("pid"))
        elif event.get("name") == "thread_name":
            named_threads.add((event.get("pid"), event.get("tid")))
    problems = set()
    for event in trace["traceEvents"]:
        if not isinstance(event, dict) or event.get("ph") == "M":
            continue
        pid = event.get("pid")
        if pid not in named_processes:
            problems.add(f"pid {pid} has no process_name metadata")
        if event.get("ph") in ("B", "E", "i", "X"):
            tid = event.get("tid")
            if (pid, tid) not in named_threads:
                problems.add(
                    f"pid {pid} tid {tid} has no thread_name metadata"
                )
    return sorted(problems)


def write_trace(path, trace):
    """Validate and write *trace* as JSON; returns the path.

    Raises :class:`ValueError` on schema problems so callers never ship
    a trace Perfetto would reject.
    """
    problems = validate_trace(trace)
    if problems:
        raise ValueError(
            "refusing to write invalid trace: " + "; ".join(problems[:5])
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, indent=None, separators=(",", ":")))
    return path
