"""MSP430 instruction timing model.

Cycle counts follow the classic MSP430 CPU tables (family user's guide):
one cycle per instruction word fetched plus the documented extra cycles
per operand addressing mode, with writes to the PC costing one extra
cycle. Constant-generator immediates time like register operands.

These are *unstalled* cycles -- FRAM wait states are added separately by
the memory system, mirroring how the paper separates Table 2 (unstalled
cycles from the simulator) from Figure 9 (wall-clock speed on hardware).
"""

from repro.isa.operands import AddressingMode
from repro.isa.registers import PC

#: Extra cycles contributed by a Format I source operand.
_SOURCE_EXTRA = {
    AddressingMode.REGISTER: 0,
    AddressingMode.INDIRECT: 1,
    AddressingMode.AUTOINC: 1,
    AddressingMode.IMMEDIATE: 1,
    AddressingMode.INDEXED: 2,
    AddressingMode.SYMBOLIC: 2,
    AddressingMode.ABSOLUTE: 2,
}

#: Extra cycles contributed by a Format I destination operand.
_DEST_EXTRA = {
    AddressingMode.REGISTER: 0,
    AddressingMode.INDEXED: 3,
    AddressingMode.SYMBOLIC: 3,
    AddressingMode.ABSOLUTE: 3,
}

#: Format II cycles by operand mode, per operation group.
_SINGLE_OPERAND = {
    AddressingMode.REGISTER: 1,
    AddressingMode.INDIRECT: 3,
    AddressingMode.AUTOINC: 3,
    AddressingMode.IMMEDIATE: 3,
    AddressingMode.INDEXED: 4,
    AddressingMode.SYMBOLIC: 4,
    AddressingMode.ABSOLUTE: 4,
}

_PUSH_CYCLES = {
    AddressingMode.REGISTER: 3,
    AddressingMode.IMMEDIATE: 3,
    AddressingMode.INDIRECT: 4,
    AddressingMode.AUTOINC: 4,
    AddressingMode.INDEXED: 5,
    AddressingMode.SYMBOLIC: 5,
    AddressingMode.ABSOLUTE: 5,
}

_CALL_CYCLES = {
    AddressingMode.REGISTER: 4,
    AddressingMode.INDIRECT: 4,
    AddressingMode.AUTOINC: 5,
    AddressingMode.IMMEDIATE: 5,
    AddressingMode.INDEXED: 5,
    AddressingMode.SYMBOLIC: 5,
    AddressingMode.ABSOLUTE: 6,
}

JUMP_CYCLES = 2
RETI_CYCLES = 5


def _source_mode(operand):
    """Timing-effective mode: CG immediates behave like registers."""
    if (
        operand.mode is AddressingMode.IMMEDIATE
        and operand.constant_generator() is not None
    ):
        return AddressingMode.REGISTER
    return operand.mode


def instruction_cycles(instruction):
    """Return the unstalled CPU cycles consumed by *instruction*."""
    if instruction.is_jump:
        return JUMP_CYCLES
    name = instruction.mnemonic
    if name == "RETI":
        return RETI_CYCLES
    if instruction.is_format_ii:
        mode = _source_mode(instruction.src)
        if name == "PUSH":
            return _PUSH_CYCLES[mode]
        if name == "CALL":
            return _CALL_CYCLES[mode]
        return _SINGLE_OPERAND[mode]
    cycles = 1
    cycles += _SOURCE_EXTRA[_source_mode(instruction.src)]
    cycles += _DEST_EXTRA[instruction.dst.mode]
    if (
        instruction.dst.mode is AddressingMode.REGISTER
        and instruction.dst.register == PC
        and name not in ("CMP", "BIT")
    ):
        cycles += 1
    return cycles
