"""MSP430 instruction-set architecture model.

This package defines the data model for the (classic, 16-bit) MSP430 CPU
used throughout the reproduction: registers, addressing modes, the core
instruction set with its binary encoding, and the per-instruction cycle
and length tables published in the MSP430 family user's guide.

The model is faithful enough that instructions are assembled to real
machine words, copied between memory regions at runtime, and decoded back
on every fetch -- which is what makes SwapRAM's self-modifying-code
techniques (call redirection, branch relocation, function copying)
work exactly as they do on silicon.
"""

from repro.isa.registers import (
    PC,
    SP,
    SR,
    CG,
    REGISTER_NAMES,
    register_name,
    register_number,
)
from repro.isa.operands import (
    AddressingMode,
    Operand,
    Sym,
    reg,
    imm,
    indexed,
    absolute,
    indirect,
    autoinc,
    symbolic,
)
from repro.isa.instructions import (
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    JUMP_CONDITIONS,
    Instruction,
    InstructionError,
)
from repro.isa.encoding import (
    EncodingError,
    encode_instruction,
    decode_instruction,
    instruction_length,
)
from repro.isa.cycles import instruction_cycles

__all__ = [
    "PC",
    "SP",
    "SR",
    "CG",
    "REGISTER_NAMES",
    "register_name",
    "register_number",
    "AddressingMode",
    "Operand",
    "Sym",
    "reg",
    "imm",
    "indexed",
    "absolute",
    "indirect",
    "autoinc",
    "symbolic",
    "FORMAT_I_OPCODES",
    "FORMAT_II_OPCODES",
    "JUMP_CONDITIONS",
    "Instruction",
    "InstructionError",
    "EncodingError",
    "encode_instruction",
    "decode_instruction",
    "instruction_length",
    "instruction_cycles",
]
