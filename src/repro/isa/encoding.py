"""Binary encoding and decoding of MSP430 instructions.

Instructions are encoded to real 16-bit machine words (opcode word plus
0-2 extension words). The simulator decodes straight from memory on
every fetch, so code copied into SRAM by SwapRAM -- including operands
rewritten in place -- executes exactly as the bytes say.
"""

from repro.isa.instructions import (
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    JUMP_CONDITIONS,
    JUMP_MNEMONICS,
    Instruction,
)
from repro.isa.operands import (
    AddressingMode,
    absolute,
    autoinc,
    imm,
    indexed,
    indirect,
    reg,
    resolve_value,
    symbolic,
)
from repro.isa.registers import CG, PC, SR

#: Reverse map: opcode nibble -> Format I mnemonic.
_FORMAT_I_BY_OPCODE = {code: name for name, code in FORMAT_I_OPCODES.items()}
#: Reverse map: opcode field -> Format II mnemonic.
_FORMAT_II_BY_OPCODE = {code: name for name, code in FORMAT_II_OPCODES.items()}

#: Constant-generator decode table: (register, As) -> constant value.
_CG_VALUES = {
    (CG, 0): 0x0000,
    (CG, 1): 0x0001,
    (CG, 2): 0x0002,
    (CG, 3): 0xFFFF,
    (SR, 2): 0x0004,
    (SR, 3): 0x0008,
}


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded (range, modes...)."""


def _source_fields(operand, symbols, extension_address):
    """Return ``(register, as_bits, extension_words)`` for a source operand."""
    mode = operand.mode
    if mode is AddressingMode.REGISTER:
        return operand.register, 0, []
    if mode is AddressingMode.INDEXED:
        return operand.register, 1, [resolve_value(operand.value, symbols)]
    if mode is AddressingMode.SYMBOLIC:
        target = resolve_value(operand.value, symbols)
        return PC, 1, [(target - extension_address) & 0xFFFF]
    if mode is AddressingMode.ABSOLUTE:
        return SR, 1, [resolve_value(operand.value, symbols)]
    if mode is AddressingMode.INDIRECT:
        return operand.register, 2, []
    if mode is AddressingMode.AUTOINC:
        return operand.register, 3, []
    if mode is AddressingMode.IMMEDIATE:
        generator = operand.constant_generator()
        if generator is not None:
            register, as_bits = generator
            return register, as_bits, []
        return PC, 3, [resolve_value(operand.value, symbols)]
    raise EncodingError(f"unencodable source mode: {mode}")


def _dest_fields(operand, symbols, extension_address):
    """Return ``(register, ad_bit, extension_words)`` for a destination."""
    mode = operand.mode
    if mode is AddressingMode.REGISTER:
        return operand.register, 0, []
    if mode is AddressingMode.INDEXED:
        return operand.register, 1, [resolve_value(operand.value, symbols)]
    if mode is AddressingMode.SYMBOLIC:
        target = resolve_value(operand.value, symbols)
        return PC, 1, [(target - extension_address) & 0xFFFF]
    if mode is AddressingMode.ABSOLUTE:
        return SR, 1, [resolve_value(operand.value, symbols)]
    raise EncodingError(f"unencodable destination mode: {mode}")


def instruction_length(instruction):
    """Return the encoded size of *instruction* in bytes (2, 4 or 6)."""
    if instruction.is_jump or instruction.mnemonic == "RETI":
        return 2
    length = 2
    if instruction.src is not None and instruction.src.needs_extension_word():
        length += 2
    if instruction.dst is not None and instruction.dst.needs_extension_word():
        length += 2
    return length


def encode_instruction(instruction, address=0, symbols=None):
    """Encode *instruction* at byte *address* into a list of 16-bit words.

    *symbols* maps label names to byte addresses for :class:`Sym` operands
    and jump targets. The address matters for PC-relative encodings
    (jump offsets and symbolic operands).
    """
    symbols = symbols or {}
    instruction.validate()
    name = instruction.mnemonic

    if instruction.is_jump:
        condition = JUMP_CONDITIONS[name]
        target = resolve_value(instruction.target, symbols)
        offset = target - (address + 2)
        if offset % 2:
            raise EncodingError(f"odd jump offset to {instruction.target}")
        words = offset // 2
        if not -512 <= words <= 511:
            raise EncodingError(
                f"jump target out of range: {words} words from {address:#06x}"
            )
        return [0x2000 | (condition << 10) | (words & 0x3FF)]

    if name == "RETI":
        return [0x1300]

    byte_bit = 0x40 if instruction.byte else 0

    if instruction.is_format_ii:
        extension_address = address + 2
        register, as_bits, extra = _source_fields(
            instruction.src, symbols, extension_address
        )
        opcode = 0x1000 | (FORMAT_II_OPCODES[name] << 7) | byte_bit
        opcode |= (as_bits << 4) | register
        return [opcode] + extra

    # Format I
    extension_address = address + 2
    source_register, as_bits, source_extra = _source_fields(
        instruction.src, symbols, extension_address
    )
    extension_address += 2 * len(source_extra)
    dest_register, ad_bit, dest_extra = _dest_fields(
        instruction.dst, symbols, extension_address
    )
    opcode = (
        (FORMAT_I_OPCODES[name] << 12)
        | (source_register << 8)
        | (ad_bit << 7)
        | byte_bit
        | (as_bits << 4)
        | dest_register
    )
    return [opcode] + source_extra + dest_extra


def _decode_source(register, as_bits, read_word, cursor):
    """Decode a source field; returns ``(operand, next_cursor)``."""
    constant = _CG_VALUES.get((register, as_bits))
    if constant is not None and not (register == SR and as_bits < 2):
        return imm(constant), cursor
    if as_bits == 0:
        return reg(register), cursor
    if as_bits == 1:
        extension = read_word(cursor)
        if register == SR:
            return absolute(extension), cursor + 2
        if register == PC:
            return symbolic((extension + cursor) & 0xFFFF), cursor + 2
        return indexed(extension, register), cursor + 2
    if as_bits == 2:
        return indirect(register), cursor
    if register == PC:  # @PC+ is an immediate
        extension = read_word(cursor)
        return imm(extension), cursor + 2
    return autoinc(register), cursor


def _decode_dest(register, ad_bit, read_word, cursor):
    """Decode a destination field; returns ``(operand, next_cursor)``."""
    if ad_bit == 0:
        return reg(register), cursor
    extension = read_word(cursor)
    if register == SR:
        return absolute(extension), cursor + 2
    if register == PC:
        return symbolic((extension + cursor) & 0xFFFF), cursor + 2
    return indexed(extension, register), cursor + 2


def decode_instruction(read_word, address):
    """Decode the instruction at byte *address*.

    *read_word* is called with byte addresses for the opcode word and any
    extension words (so the caller can account each fetch). Returns
    ``(instruction, length_in_bytes)``. Raises :class:`EncodingError` for
    illegal opcodes.
    """
    opcode = read_word(address)
    top = opcode >> 13

    if top == 1:  # 001x -> jump
        condition = (opcode >> 10) & 0x7
        offset = opcode & 0x3FF
        if offset >= 512:
            offset -= 1024
        target = (address + 2 + 2 * offset) & 0xFFFF
        return Instruction(JUMP_MNEMONICS[condition], target=target), 2

    if (opcode >> 10) == 0x4:  # 000100 -> Format II
        operation = (opcode >> 7) & 0x7
        name = _FORMAT_II_BY_OPCODE.get(operation)
        if name is None:
            raise EncodingError(f"illegal Format II opcode {opcode:#06x}")
        if name == "RETI":
            return Instruction("RETI"), 2
        byte = bool(opcode & 0x40)
        as_bits = (opcode >> 4) & 0x3
        register = opcode & 0xF
        cursor = address + 2
        source, cursor = _decode_source(register, as_bits, read_word, cursor)
        return Instruction(name, src=source, byte=byte), cursor - address

    nibble = opcode >> 12
    name = _FORMAT_I_BY_OPCODE.get(nibble)
    if name is None:
        raise EncodingError(f"illegal opcode {opcode:#06x} at {address:#06x}")
    source_register = (opcode >> 8) & 0xF
    ad_bit = (opcode >> 7) & 0x1
    byte = bool(opcode & 0x40)
    as_bits = (opcode >> 4) & 0x3
    dest_register = opcode & 0xF
    cursor = address + 2
    source, cursor = _decode_source(source_register, as_bits, read_word, cursor)
    dest, cursor = _decode_dest(dest_register, ad_bit, read_word, cursor)
    return Instruction(name, src=source, dst=dest, byte=byte), cursor - address
