"""Operand and addressing-mode model for the MSP430.

The MSP430 source field supports four addressing modes (register,
indexed, indirect, indirect-autoincrement); immediates, absolute and
symbolic addresses are encodings of those modes on the PC and SR
registers. Destinations support register and indexed (incl. absolute /
symbolic) modes only.

Operand values may be concrete integers or :class:`Sym` references that
the assembler resolves against the symbol table -- this is how function
labels, SwapRAM redirection entries and relocation slots are named in
the instrumented assembly before layout is known.
"""

import enum
from dataclasses import dataclass

from repro.isa.registers import CG, PC, SR, register_name


class AddressingMode(enum.Enum):
    """The seven programmer-visible MSP430 addressing modes."""

    REGISTER = "Rn"
    INDEXED = "X(Rn)"
    SYMBOLIC = "ADDR"
    ABSOLUTE = "&ADDR"
    INDIRECT = "@Rn"
    AUTOINC = "@Rn+"
    IMMEDIATE = "#N"


#: Modes that read/write through memory (as opposed to a register or an
#: instruction-stream immediate).
MEMORY_MODES = frozenset(
    {
        AddressingMode.INDEXED,
        AddressingMode.SYMBOLIC,
        AddressingMode.ABSOLUTE,
        AddressingMode.INDIRECT,
        AddressingMode.AUTOINC,
    }
)

#: Modes legal in a Format I destination / Format II operand position.
DEST_MODES = frozenset(
    {
        AddressingMode.REGISTER,
        AddressingMode.INDEXED,
        AddressingMode.SYMBOLIC,
        AddressingMode.ABSOLUTE,
    }
)


@dataclass(frozen=True)
class Sym:
    """A symbolic value -- a label name plus a constant addend.

    ``Sym("crc_table", 4)`` denotes the address of ``crc_table`` plus 4
    bytes. Symbols appear anywhere an integer could (immediates, indexed
    displacements, absolute addresses) and are resolved at assembly time.
    """

    name: str
    addend: int = 0

    def shifted(self, extra):
        """Return the same symbol displaced by *extra* more bytes."""
        return Sym(self.name, self.addend + extra)

    def __str__(self):
        if self.addend:
            return f"{self.name}{self.addend:+d}"
        return self.name


def resolve_value(value, symbols):
    """Resolve *value* (int or :class:`Sym`) against a symbol mapping."""
    if isinstance(value, Sym):
        try:
            base = symbols[value.name]
        except KeyError:
            raise KeyError(f"undefined symbol: {value.name}") from None
        return (base + value.addend) & 0xFFFF
    return int(value) & 0xFFFF


@dataclass(frozen=True)
class Operand:
    """One instruction operand: an addressing mode plus its parameters.

    ``register`` is meaningful for register-relative modes; ``value``
    carries the immediate, displacement or address (int or :class:`Sym`).
    """

    mode: AddressingMode
    register: int = 0
    value: object = 0

    # -- classification helpers -------------------------------------------

    def is_memory(self):
        """True when evaluating this operand touches data memory."""
        return self.mode in MEMORY_MODES

    def needs_extension_word(self):
        """True when the encoding consumes a word from the instruction stream.

        Immediates expressible by the constant generators (#0, #1, #2,
        #4, #8, #-1 with a concrete value) need no extension word.
        """
        if self.mode in (
            AddressingMode.INDEXED,
            AddressingMode.SYMBOLIC,
            AddressingMode.ABSOLUTE,
        ):
            return True
        if self.mode is AddressingMode.IMMEDIATE:
            return self.constant_generator() is None
        return False

    def constant_generator(self):
        """Return ``(register, as_bits)`` when this is a CG-encodable immediate.

        The MSP430 encodes #0/#1/#2/#-1 on R3 and #4/#8 on R2 without an
        extension word. Symbolic immediates never use the generator (their
        final value is unknown when the encoding is chosen).
        """
        if self.mode is not AddressingMode.IMMEDIATE:
            return None
        if isinstance(self.value, Sym):
            return None
        value = int(self.value) & 0xFFFF
        table = {
            0x0000: (CG, 0),
            0x0001: (CG, 1),
            0x0002: (CG, 2),
            0xFFFF: (CG, 3),
            0x0004: (SR, 2),
            0x0008: (SR, 3),
        }
        return table.get(value)

    # -- display ------------------------------------------------------------

    def __str__(self):
        mode = self.mode
        if mode is AddressingMode.REGISTER:
            return register_name(self.register)
        if mode is AddressingMode.INDEXED:
            return f"{self.value}({register_name(self.register)})"
        if mode is AddressingMode.SYMBOLIC:
            return str(self.value)
        if mode is AddressingMode.ABSOLUTE:
            return f"&{self.value}"
        if mode is AddressingMode.INDIRECT:
            return f"@{register_name(self.register)}"
        if mode is AddressingMode.AUTOINC:
            return f"@{register_name(self.register)}+"
        return f"#{self.value}"


# -- constructors ------------------------------------------------------------


def reg(number):
    """Register-direct operand ``Rn``."""
    return Operand(AddressingMode.REGISTER, register=number)


def imm(value):
    """Immediate operand ``#value`` (int or :class:`Sym`)."""
    return Operand(AddressingMode.IMMEDIATE, register=PC, value=value)


def indexed(value, register):
    """Indexed operand ``value(Rn)``."""
    return Operand(AddressingMode.INDEXED, register=register, value=value)


def absolute(value):
    """Absolute operand ``&value`` -- a fixed memory address."""
    return Operand(AddressingMode.ABSOLUTE, register=SR, value=value)


def symbolic(value):
    """Symbolic (PC-relative) operand ``value`` encoded as ``X(PC)``."""
    return Operand(AddressingMode.SYMBOLIC, register=PC, value=value)


def indirect(register):
    """Register-indirect operand ``@Rn`` (source only)."""
    return Operand(AddressingMode.INDIRECT, register=register)


def autoinc(register):
    """Indirect autoincrement operand ``@Rn+`` (source only)."""
    return Operand(AddressingMode.AUTOINC, register=register)
