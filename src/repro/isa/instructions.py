"""Core MSP430 instruction set: mnemonics, formats and validation.

Three instruction formats exist:

* **Format I** (double operand): ``MOV``, ``ADD``, ... ``AND``.
* **Format II** (single operand): ``RRC``, ``SWPB``, ``RRA``, ``SXT``,
  ``PUSH``, ``CALL``, ``RETI``.
* **Jumps**: the eight conditional/unconditional PC-relative jumps with a
  10-bit signed word offset -- the ±512-word range whose limits drive
  both SwapRAM's absolute-branch relocation scheme and the block cache's
  Figure 6 transformation.

Emulated mnemonics (``RET``, ``BR``, ``NOP``, ``INC`` ...) are assembler
conveniences that expand to core instructions; :func:`expand_emulated`
performs that expansion so every later stage sees core instructions only.
"""

from dataclasses import dataclass, replace
from typing import Optional

from repro.isa.operands import (
    DEST_MODES,
    AddressingMode,
    Operand,
    autoinc,
    imm,
    reg,
)
from repro.isa.registers import CG, PC, SP, SR

#: Format I mnemonics -> opcode nibble (bits 15:12).
FORMAT_I_OPCODES = {
    "MOV": 0x4,
    "ADD": 0x5,
    "ADDC": 0x6,
    "SUBC": 0x7,
    "SUB": 0x8,
    "CMP": 0x9,
    "DADD": 0xA,
    "BIT": 0xB,
    "BIC": 0xC,
    "BIS": 0xD,
    "XOR": 0xE,
    "AND": 0xF,
}

#: Format I operations that do not write their destination.
NO_WRITEBACK = frozenset({"CMP", "BIT"})

#: Format I operations that write without reading the old destination.
WRITE_ONLY = frozenset({"MOV"})

#: Format II mnemonics -> opcode field (bits 9:7 of the 0x1xxx space).
FORMAT_II_OPCODES = {
    "RRC": 0,
    "SWPB": 1,
    "RRA": 2,
    "SXT": 3,
    "PUSH": 4,
    "CALL": 5,
    "RETI": 6,
}

#: Jump mnemonics -> condition code (bits 12:10). Aliases share codes.
JUMP_CONDITIONS = {
    "JNE": 0,
    "JNZ": 0,
    "JEQ": 1,
    "JZ": 1,
    "JNC": 2,
    "JLO": 2,
    "JC": 3,
    "JHS": 3,
    "JN": 4,
    "JGE": 5,
    "JL": 6,
    "JMP": 7,
}

#: Canonical jump mnemonic per condition code (for disassembly).
JUMP_MNEMONICS = ("JNE", "JEQ", "JNC", "JC", "JN", "JGE", "JL", "JMP")

#: Mnemonics that support a ``.B`` byte-mode suffix.
BYTE_CAPABLE = frozenset(FORMAT_I_OPCODES) | {"RRC", "RRA", "PUSH"}


class InstructionError(ValueError):
    """Raised for malformed instructions (bad mnemonic / operand modes)."""


@dataclass(frozen=True)
class Instruction:
    """One core MSP430 instruction.

    * Format I: ``src`` and ``dst`` set.
    * Format II: ``src`` set (``RETI`` takes none), ``dst`` is None.
    * Jump: ``target`` set -- an int byte-address or :class:`Sym`;
      the assembler converts it to the encoded word offset.
    """

    mnemonic: str
    src: Optional[Operand] = None
    dst: Optional[Operand] = None
    target: object = None
    byte: bool = False

    # -- format predicates ---------------------------------------------------

    @property
    def is_format_i(self):
        return self.mnemonic in FORMAT_I_OPCODES

    @property
    def is_format_ii(self):
        return self.mnemonic in FORMAT_II_OPCODES

    @property
    def is_jump(self):
        return self.mnemonic in JUMP_CONDITIONS

    @property
    def is_call(self):
        return self.mnemonic == "CALL"

    def writes_pc(self):
        """True when executing this instruction replaces the PC.

        Covers jumps, CALL/RETI, and Format I instructions whose
        destination is the PC register (``BR``, ``RET`` expansions).
        """
        if self.is_jump or self.mnemonic in ("CALL", "RETI"):
            return True
        return (
            self.dst is not None
            and self.dst.mode is AddressingMode.REGISTER
            and self.dst.register == PC
            and self.mnemonic not in NO_WRITEBACK
        )

    def validate(self):
        """Raise :class:`InstructionError` if the instruction is malformed."""
        name = self.mnemonic
        if self.byte and name not in BYTE_CAPABLE:
            raise InstructionError(f"{name} has no byte form")
        if self.is_format_i:
            if self.src is None or self.dst is None:
                raise InstructionError(f"{name} needs two operands")
            if self.dst.mode not in DEST_MODES:
                raise InstructionError(
                    f"{name} destination mode {self.dst.mode.value} not writable"
                )
        elif self.is_format_ii:
            if name == "RETI":
                if self.src is not None or self.dst is not None:
                    raise InstructionError("RETI takes no operands")
            else:
                if self.src is None or self.dst is not None:
                    raise InstructionError(f"{name} needs one operand")
                if name not in ("PUSH", "CALL") and self.src.mode in (
                    AddressingMode.IMMEDIATE,
                ):
                    raise InstructionError(f"{name} cannot take an immediate")
                if name not in ("PUSH", "CALL") and self.src.mode not in DEST_MODES:
                    # RRA/RRC/SWPB/SXT write their operand back.
                    raise InstructionError(
                        f"{name} operand mode {self.src.mode.value} not writable"
                    )
        elif self.is_jump:
            if self.target is None:
                raise InstructionError(f"{name} needs a target")
        else:
            raise InstructionError(f"unknown mnemonic: {name}")

    def __str__(self):
        suffix = ".B" if self.byte else ""
        if self.is_jump:
            return f"{self.mnemonic} {self.target}"
        if self.mnemonic == "RETI":
            return "RETI"
        if self.dst is not None:
            return f"{self.mnemonic}{suffix} {self.src}, {self.dst}"
        return f"{self.mnemonic}{suffix} {self.src}"


#: Emulated mnemonics that expand with no operands of their own.
_FIXED_EMULATED = {
    "NOP": Instruction("MOV", src=reg(CG), dst=reg(CG)),
    "RET": Instruction("MOV", src=autoinc(SP), dst=reg(PC)),
    "SETC": Instruction("BIS", src=imm(1), dst=reg(SR)),
    "CLRC": Instruction("BIC", src=imm(1), dst=reg(SR)),
    "SETZ": Instruction("BIS", src=imm(2), dst=reg(SR)),
    "CLRZ": Instruction("BIC", src=imm(2), dst=reg(SR)),
    "SETN": Instruction("BIS", src=imm(4), dst=reg(SR)),
    "CLRN": Instruction("BIC", src=imm(4), dst=reg(SR)),
    "DINT": Instruction("BIC", src=imm(8), dst=reg(SR)),
    "EINT": Instruction("BIS", src=imm(8), dst=reg(SR)),
}

#: mnemonic -> (core op, immediate source) for ``OP dst`` shorthands.
_IMMEDIATE_EMULATED = {
    "CLR": ("MOV", 0),
    "INC": ("ADD", 1),
    "INCD": ("ADD", 2),
    "DEC": ("SUB", 1),
    "DECD": ("SUB", 2),
    "TST": ("CMP", 0),
    "INV": ("XOR", 0xFFFF),
    "ADC": ("ADDC", 0),
    "SBC": ("SUBC", 0),
    "DADC": ("DADD", 0),
    "RLA": ("ADD", None),  # ADD dst, dst
    "RLC": ("ADDC", None),  # ADDC dst, dst
}

EMULATED_MNEMONICS = (
    frozenset(_FIXED_EMULATED) | frozenset(_IMMEDIATE_EMULATED) | {"BR", "POP"}
)


def expand_emulated(mnemonic, operand=None, byte=False):
    """Expand an emulated *mnemonic* into its core :class:`Instruction`.

    *operand* is the single operand for forms like ``CLR dst`` / ``BR src``;
    it must be None for fixed forms like ``RET``.
    """
    name = mnemonic.upper()
    if name in _FIXED_EMULATED:
        if operand is not None:
            raise InstructionError(f"{name} takes no operand")
        return _FIXED_EMULATED[name]
    if operand is None:
        raise InstructionError(f"{name} needs an operand")
    if name == "BR":
        return Instruction("MOV", src=operand, dst=reg(PC))
    if name == "POP":
        return Instruction("MOV", src=autoinc(SP), dst=operand, byte=byte)
    if name in _IMMEDIATE_EMULATED:
        core, value = _IMMEDIATE_EMULATED[name]
        source = operand if value is None else imm(value)
        return Instruction(core, src=source, dst=operand, byte=byte)
    raise InstructionError(f"not an emulated mnemonic: {mnemonic}")


def with_target(instruction, target):
    """Return a copy of a jump *instruction* aimed at *target*."""
    return replace(instruction, target=target)
