"""MSP430 register file definitions.

The MSP430 has sixteen 16-bit registers. Four have dedicated roles:

* ``R0`` / ``PC`` -- program counter
* ``R1`` / ``SP`` -- stack pointer
* ``R2`` / ``SR`` -- status register, doubling as constant generator 1
* ``R3`` / ``CG`` -- constant generator 2 (never a real storage register)

The remaining twelve (``R4``-``R15``) are general purpose. The MSP430
EABI passes the first four word-sized arguments in ``R12``-``R15`` and
returns values in ``R12``; the reproduction's compiler and SwapRAM's
miss handler both honour that convention.
"""

PC = 0
SP = 1
SR = 2
CG = 3

#: Canonical display names, indexed by register number.
REGISTER_NAMES = (
    "PC",
    "SP",
    "SR",
    "CG",
    "R4",
    "R5",
    "R6",
    "R7",
    "R8",
    "R9",
    "R10",
    "R11",
    "R12",
    "R13",
    "R14",
    "R15",
)

_ALIASES = {
    "PC": PC,
    "SP": SP,
    "SR": SR,
    "CG": CG,
    "R0": PC,
    "R1": SP,
    "R2": SR,
    "R3": CG,
}


def register_name(number):
    """Return the canonical name for register *number* (0-15)."""
    return REGISTER_NAMES[number]


def register_number(name):
    """Parse a register name (``R7``, ``pc``, ``sp`` ...) to its number.

    Raises ``ValueError`` for anything that is not a register name.
    """
    key = name.strip().upper()
    if key in _ALIASES:
        return _ALIASES[key]
    if key.startswith("R") and key[1:].isdigit():
        number = int(key[1:])
        if 0 <= number <= 15:
            return number
    raise ValueError(f"not a register name: {name!r}")


def is_register_name(name):
    """Return True when *name* parses as a register."""
    try:
        register_number(name)
    except ValueError:
        return False
    return True
