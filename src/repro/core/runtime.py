"""The SwapRAM cache miss handler (paper §3.3, Figure 4).

Installed as a native hook at ``__sr_miss_handler``. A call to an
uncached function arrives here via ``CALL &__sr_redir+2k`` (return
address already pushed, argument registers untouched). The handler:

1. reads the signalled funcId and its function-table entry;
2. asks the cache policy where to place the function and whom to evict;
3. checks every flagged victim's active counter -- if any is live the
   whole caching operation aborts and the call executes from NVM
   (call-stack integrity, §3.3.3);
4. evicts victims: redirection entries back to the handler, relocation
   entries back to their NVM targets;
5. copies the function into SRAM word by word;
6. writes the function's relocation entries (``sram_base + offset``)
   and repoints its redirection entry at the copy;
7. branches to the copy.

Every metadata touch and every copied word is a real bus transaction;
control-flow-free work (register save/restore, arithmetic) is charged
through :class:`~repro.core.costs.CostCharger`.
"""

from dataclasses import dataclass, field

from repro.core.costs import CostCharger
from repro.core.transform import (
    ACTIVE_TABLE,
    CUR_FUNC,
    FUNC_TABLE,
    MEMCPY_AREA,
    MISS_HANDLER,
    REDIR_TABLE,
    RELOC_TABLE,
)
from repro.isa.registers import PC
from repro.machine.trace import Attribution


@dataclass
class SwapRamStats:
    """Observable runtime behaviour, for tests and experiments."""

    misses: int = 0
    caches: int = 0
    evictions: int = 0
    aborts: int = 0  # eviction blocked by an active victim
    nvm_fallbacks: int = 0  # executions redirected back to NVM
    words_copied: int = 0
    freezes: int = 0  # thrash-guard activations (extension, §5.4)
    frozen_fallbacks: int = 0  # NVM executions while frozen
    prefetches: int = 0  # call-graph prefetches (extension, §3)
    per_function_caches: dict = field(default_factory=dict)

    @property
    def thrash_ratio(self):
        """Re-caches per function actually cached -- AES-style thrashing.

        0.0 when nothing was ever cached: a run that never cached a
        function cannot have thrashed (it may well have fallen back to
        NVM on every miss, which other counters expose).
        """
        if not self.per_function_caches:
            return 0.0
        return self.caches / len(self.per_function_caches)

    def as_dict(self):
        """Plain-data view for reports, traces and the difftest runner."""
        return {
            "misses": self.misses,
            "caches": self.caches,
            "evictions": self.evictions,
            "aborts": self.aborts,
            "nvm_fallbacks": self.nvm_fallbacks,
            "words_copied": self.words_copied,
            "freezes": self.freezes,
            "frozen_fallbacks": self.frozen_fallbacks,
            "prefetches": self.prefetches,
            "thrash_ratio": self.thrash_ratio,
            "per_function_caches": dict(self.per_function_caches),
        }


class SwapRamRuntime:
    """Host-side miss handler operating on the simulated machine."""

    def __init__(
        self,
        board,
        image,
        meta,
        policy,
        cost_model,
        thrash_guard=None,
        prefetcher=None,
    ):
        self.board = board
        self.bus = board.bus
        self.image = image
        self.meta = meta
        self.policy = policy
        self.costs = cost_model
        self.thrash_guard = thrash_guard
        self.prefetcher = prefetcher
        self.stats = SwapRamStats()
        #: Opt-in observability hook (see :mod:`repro.obs.timeline`).
        #: ``None`` by default; every use is behind an ``is not None``
        #: guard so the untraced hot path is unchanged.
        self.timeline = None
        #: Opt-in metrics hook (see :mod:`repro.metrics.instrument`).
        #: Same discipline as ``timeline``: ``None`` by default, every
        #: use guarded by ``is not None``.
        self.metrics = None

        symbols = image.symbols
        self.cur_func_addr = symbols[CUR_FUNC]
        self.redir_base = symbols[REDIR_TABLE]
        self.active_base = symbols[ACTIVE_TABLE]
        self.functab_base = symbols[FUNC_TABLE]
        self.reloc_base = symbols[RELOC_TABLE]
        self.handler_addr = symbols[MISS_HANDLER]
        self.by_id = {m.func_id: m for m in meta.functions}
        self.nvm_addr = {m.func_id: symbols[m.name] for m in meta.functions}

        self.handler_charger = CostCharger(
            self.bus,
            self.handler_addr,
            meta.handler_bytes,
            cost_model.cycles_per_instruction,
        )
        self.memcpy_charger = CostCharger(
            self.bus,
            symbols[MEMCPY_AREA],
            meta.memcpy_bytes,
            cost_model.cycles_per_instruction,
        )

    def install(self):
        """Hook the miss handler's entry address."""
        self.board.add_hook(self.handler_addr, self)
        return self

    # -- the handler ---------------------------------------------------------------

    def __call__(self, cpu):
        bus = self.bus
        costs = self.costs
        charge = self.handler_charger.charge
        self.stats.misses += 1
        if self.metrics is not None:
            self.metrics.counter("swapram.misses").inc()
        self.handler_charger.begin_invocation()
        self.memcpy_charger.begin_invocation()

        with bus.attributed(Attribution.RUNTIME):
            charge(costs.entry_instructions)
            func_id = bus.read(self.cur_func_addr)
            func = self.by_id.get(func_id)
            if func is None:
                raise RuntimeError(f"miss handler: bad funcId {func_id}")
            nvm_addr = bus.read(self.functab_base + 4 * func_id)
            size = bus.read(self.functab_base + 4 * func_id + 2)
            if self.timeline is not None:
                self.timeline.record(
                    "miss",
                    func=func.name,
                    func_id=func_id,
                    size=size,
                    occupancy=self.policy.used_bytes(),
                )

            target = self._try_cache(func, nvm_addr, size)
            if self.prefetcher is not None and target != nvm_addr:
                self._prefetch_callees(func)
            charge(costs.exit_instructions)
        cpu.regs[PC] = target

    def _prefetch_callees(self, func):
        """Extension: pull *func*'s likely callees into free space."""
        bus = self.bus
        costs = self.costs
        for callee in self.prefetcher.candidates(self, func):
            self.handler_charger.charge(costs.decision_instructions)
            nvm_addr = bus.read(self.functab_base + 4 * callee.func_id)
            size = bus.read(self.functab_base + 4 * callee.func_id + 2)
            placement = self.policy.plan(size, is_active=self._is_active)
            if placement is None or placement.victims:
                continue  # never evict on a prediction
            node = self.policy.commit(callee.func_id, placement, size)
            self._copy_function(nvm_addr, node.address, size)
            self._apply_relocations(callee, node.address)
            bus.write(self.redir_base + 2 * callee.func_id, node.address)
            self.prefetcher.note_prefetch()
            self.stats.prefetches += 1
            if self.metrics is not None:
                self.metrics.counter("swapram.prefetches").inc()
            if self.timeline is not None:
                self.timeline.record(
                    "prefetch",
                    func=callee.name,
                    func_id=callee.func_id,
                    address=node.address,
                    size=size,
                    occupancy=self.policy.used_bytes(),
                )
            counts = self.stats.per_function_caches
            counts[callee.name] = counts.get(callee.name, 0) + 1

    def _try_cache(self, func, nvm_addr, size):
        """Cache *func* if possible; return the address to execute."""
        bus = self.bus
        costs = self.costs
        charge = self.handler_charger.charge

        charge(costs.decision_instructions)
        placement = self.policy.plan(size, is_active=self._is_active)
        if placement is None:
            self.stats.nvm_fallbacks += 1
            if self.metrics is not None:
                self.metrics.counter("swapram.nvm_fallbacks").inc()
            if self.timeline is not None:
                self.timeline.record(
                    "nvm-fallback", func=func.name, func_id=func.func_id,
                    note="no-placement",
                )
            return nvm_addr
        charge(costs.scan_instructions_per_node * max(placement.nodes_scanned, 1))

        # Thrash-guard extension (§5.4): while frozen, misses that would
        # evict live cache contents run from NVM instead of churning.
        if self.thrash_guard is not None:
            freezes_before = self.stats.freezes
            frozen = self.thrash_guard.observe_miss(bool(placement.victims))
            self.stats.freezes = self.thrash_guard.freezes
            if self.timeline is not None and self.stats.freezes > freezes_before:
                self.timeline.record(
                    "freeze", func=func.name, func_id=func.func_id,
                    occupancy=self.policy.used_bytes(),
                )
            if frozen and placement.victims:
                self.stats.frozen_fallbacks += 1
                self.stats.nvm_fallbacks += 1
                if self.metrics is not None:
                    self.metrics.counter("swapram.nvm_fallbacks").inc()
                if self.timeline is not None:
                    self.timeline.record(
                        "nvm-fallback", func=func.name, func_id=func.func_id,
                        note="frozen",
                    )
                return nvm_addr

        # Flag victims, then verify none is on the call stack (§3.3.3).
        for victim in placement.victims:
            charge(costs.active_check_instructions)
            active = bus.read(self.active_base + 2 * victim.func_id)
            # The incoming function's own counter was already incremented
            # at the call site; ignore that self-reference if it appears.
            if victim.func_id == func.func_id:
                active -= 1
            if active:
                self.stats.aborts += 1
                self.stats.nvm_fallbacks += 1
                if self.metrics is not None:
                    self.metrics.counter("swapram.aborts").inc()
                    self.metrics.counter("swapram.nvm_fallbacks").inc()
                if self.timeline is not None:
                    victim_name = self.by_id[victim.func_id].name
                    self.timeline.record(
                        "abort", func=func.name, func_id=func.func_id,
                        note=f"active-victim:{victim_name}",
                    )
                    self.timeline.record(
                        "nvm-fallback", func=func.name, func_id=func.func_id,
                        note="abort",
                    )
                return nvm_addr

        for victim in placement.victims:
            self._evict(victim)
            charge(costs.evict_instructions)

        node = self.policy.commit(func.func_id, placement, size)
        self._copy_function(nvm_addr, node.address, size)
        self._apply_relocations(func, node.address)
        bus.write(self.redir_base + 2 * func.func_id, node.address)

        self.stats.caches += 1
        if self.metrics is not None:
            self.metrics.counter("swapram.caches").inc()
            self.metrics.histogram("swapram.cached_function_bytes").observe(size)
            self.metrics.gauge("swapram.occupancy_bytes").set(
                self.policy.used_bytes()
            )
        if self.timeline is not None:
            self.timeline.record(
                "cache", func=func.name, func_id=func.func_id,
                address=node.address, size=size,
                occupancy=self.policy.used_bytes(),
            )
        counts = self.stats.per_function_caches
        counts[func.name] = counts.get(func.name, 0) + 1
        return node.address

    def _is_active(self, func_id):
        """Uncharged planning peek; the charged per-victim check below is
        the authoritative one (it re-reads through the bus)."""
        return self.bus.memory.read_word(self.active_base + 2 * func_id) > 0

    def _evict(self, victim):
        """Reset a victim's metadata (paper §3.3.2)."""
        bus = self.bus
        self.stats.evictions += 1
        if self.metrics is not None:
            self.metrics.counter("swapram.evictions").inc()
        if self.timeline is not None:
            self.timeline.record(
                "evict",
                func=self.by_id[victim.func_id].name,
                func_id=victim.func_id,
                address=victim.address,
                size=victim.size,
                occupancy=self.policy.used_bytes(),
            )
        bus.write(self.redir_base + 2 * victim.func_id, self.handler_addr)
        meta = self.by_id[victim.func_id]
        nvm_base = self.nvm_addr[victim.func_id]
        for reloc in meta.relocs:
            self.handler_charger.charge(self.costs.reloc_instructions)
            bus.write(
                self.reloc_base + 2 * reloc.index,
                (nvm_base + reloc.target_offset) & 0xFFFF,
            )

    def _copy_function(self, source, dest, size):
        """Word-by-word copy through the bus, attributed to memcpy."""
        bus = self.bus
        words = (size + 1) // 2
        self.stats.words_copied += words
        if self.metrics is not None:
            self.metrics.histogram("swapram.copied_words").observe(words)
        with bus.attributed(Attribution.MEMCPY):
            self.memcpy_charger.charge(
                self.costs.memcpy_setup_instructions, Attribution.MEMCPY
            )
            for index in range(words):
                self.memcpy_charger.charge(
                    self.costs.memcpy_instructions_per_word, Attribution.MEMCPY
                )
                value = bus.read(source + 2 * index)
                bus.write(dest + 2 * index, value)

    def _apply_relocations(self, func, sram_base):
        for reloc in func.relocs:
            self.handler_charger.charge(self.costs.reloc_instructions)
            self.bus.write(
                self.reloc_base + 2 * reloc.index,
                (sram_base + reloc.target_offset) & 0xFFFF,
            )
