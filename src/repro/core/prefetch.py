"""Call-graph prefetching (§3's "pre-fetch code for execution far in the
future", exercised as an extension).

SwapRAM's semantic advantage over a hardware cache is that the static
pass sees the call graph. :class:`CallGraphPrefetcher` uses it: when the
miss handler caches a function, the prefetcher also copies that
function's statically-likely callees into *free* cache space -- never
evicting for a prediction, so the only cost is the copy itself, and each
hit saves a future miss-handler round trip (entry + lookup + placement).

Whether prefetching paid off is measured externally: a prefetched
function's later calls bypass the handler entirely, so the visible
effect is a drop in miss count (see
``benchmarks/test_ablation_prefetch.py``).

Enabled via ``build_swapram(..., prefetcher=CallGraphPrefetcher())``;
off by default to match the paper's evaluated system.
"""


class CallGraphPrefetcher:
    """Prefetch up to *fanout* uncached callees into free cache space."""

    def __init__(self, fanout=2):
        self.fanout = fanout
        self.prefetches = 0

    def candidates(self, runtime, func):
        """Yield FuncMeta records worth prefetching after caching *func*.

        Callees come ordered by static call-site count; already-cached
        functions and self-recursion are skipped.
        """
        emitted = 0
        for callee_id in func.callees:
            if emitted >= self.fanout:
                return
            if callee_id == func.func_id:
                continue
            if runtime.policy.lookup(callee_id) is not None:
                continue
            emitted += 1
            yield runtime.by_id[callee_id]

    def note_prefetch(self):
        self.prefetches += 1
