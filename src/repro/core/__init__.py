"""SwapRAM: the paper's contribution.

A software instruction cache for NVRAM-based microcontrollers:

* :mod:`repro.core.transform` -- the compile-time assembly pass:
  call-site redirection through per-function entries, funcId
  signalling, active-counter maintenance for call-stack integrity,
  jump-range legalisation, and absolute-branch relocation entries
  (paper §3.2, Figure 3).
* :mod:`repro.core.policy` -- the cache memory structures of §3.4:
  the circular queue used in the paper plus the stack alternative it
  argues against (kept for the ablation benchmark).
* :mod:`repro.core.runtime` -- the cache miss handler (§3.3): placement,
  eviction with active-counter checks and NVM-execution fallback,
  word-by-word copy into SRAM, and branch-relocation updates. Hosted as
  a simulator native hook; all memory traffic is real bus traffic and
  cycle costs follow :mod:`repro.core.costs`.
* :mod:`repro.core.system` -- one-call builder wiring it all together.
"""

from repro.core.costs import RuntimeCostModel
from repro.core.policy import CacheNode, CircularQueuePolicy, StackPolicy
from repro.core.transform import SwapRamMeta, instrument_for_swapram
from repro.core.runtime import SwapRamRuntime, SwapRamStats
from repro.core.system import SwapRamSystem, build_swapram
from repro.core.thrash import ThrashGuard
from repro.core.prefetch import CallGraphPrefetcher

__all__ = [
    "RuntimeCostModel",
    "CacheNode",
    "CircularQueuePolicy",
    "StackPolicy",
    "SwapRamMeta",
    "instrument_for_swapram",
    "SwapRamRuntime",
    "SwapRamStats",
    "SwapRamSystem",
    "build_swapram",
    "ThrashGuard",
    "CallGraphPrefetcher",
]
