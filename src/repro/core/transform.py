"""SwapRAM's compile-time assembly pass (paper §3.2, Figure 3).

Four rewrites make every candidate function runtime-relocatable and
route its calls through the runtime:

1. **Call redirection** -- each ``CALL #f`` to a cacheable function
   becomes::

       MOV  #funcId, &__sr_cur_func   ; signal the callee to the runtime
       ADD  #1, &__sr_active+2k       ; call-stack integrity (§3.3.3)
       CALL &__sr_redir+2k            ; indirect through the redirection entry
       SUB  #1, &__sr_active+2k

   Redirection entries initially hold the miss handler's address; the
   runtime repoints them at the SRAM copy once cached, so later calls
   bypass the handler entirely.
2. **Jump legalisation** -- instrumentation growth can push conditional
   jumps past the MSP430's +-512-word PC-relative range; such jumps are
   rewritten to an inverted jump over an absolute branch (the same
   trick the paper applies, §4/Figure 6).
3. **Absolute-branch relocation** -- every remaining absolute branch
   (``MOV #label, PC``) inside a candidate is replaced with
   ``MOV &__sr_reloc+2r, PC``; the runtime maintains each entry as
   ``function_base + offset`` for wherever the function currently lives.
4. **Relocatability check** -- any other instruction materialising an
   intra-function code address (e.g. a jump table) is rejected, which
   is exactly why the paper rewrites bitcount's jump table (§4).

Metadata tables and the reserved runtime area are appended as extra
FRAM sections so Figure 7's application/runtime/metadata split falls
out of the section sizes.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.asm.ast import DataItem, Label
from repro.core.costs import RuntimeCostModel
from repro.isa.encoding import instruction_length
from repro.isa.instructions import Instruction
from repro.isa.operands import (
    AddressingMode,
    Sym,
    absolute,
    imm,
    reg,
)
from repro.isa.registers import PC

# Section and symbol names (program-global).
META_SECTION = "srmeta"
RUNTIME_SECTION = "srruntime"
CUR_FUNC = "__sr_cur_func"
REDIR_TABLE = "__sr_redir"
ACTIVE_TABLE = "__sr_active"
FUNC_TABLE = "__sr_functab"
RELOC_TABLE = "__sr_reloc"
MISS_HANDLER = "__sr_miss_handler"
MEMCPY_AREA = "__sr_memcpy"

#: Jump-condition inversion (condition-code pairs); JN has no inverse.
_INVERT = {
    "JNE": "JEQ",
    "JNZ": "JEQ",
    "JEQ": "JNE",
    "JZ": "JNE",
    "JNC": "JC",
    "JLO": "JHS",
    "JC": "JNC",
    "JHS": "JLO",
    "JGE": "JL",
    "JL": "JGE",
}

#: PC-relative jump reach in words (10-bit signed offset).
_JUMP_MIN_WORDS = -512
_JUMP_MAX_WORDS = 511


class TransformError(ValueError):
    """The program cannot be made safely relocatable."""


@dataclass
class RelocInfo:
    """One absolute branch: global entry index and intra-function target."""

    index: int
    target_label: str
    target_offset: int


@dataclass
class FuncMeta:
    """Per-candidate metadata mirroring the runtime's function table."""

    name: str
    func_id: int
    size: int
    relocs: List[RelocInfo] = field(default_factory=list)
    #: Static call graph edge list: candidate funcIds this function
    #: calls, ordered by call-site count (§3's prefetch direction).
    callees: List[int] = field(default_factory=list)


@dataclass
class SwapRamMeta:
    """Everything the runtime needs about the instrumented program."""

    functions: List[FuncMeta]
    handler_bytes: int
    memcpy_bytes: int

    def __post_init__(self):
        self.by_name: Dict[str, FuncMeta] = {
            meta.name: meta for meta in self.functions
        }

    @property
    def total_relocs(self):
        return sum(len(meta.relocs) for meta in self.functions)

    @property
    def metadata_bytes(self):
        """Size of the state tables (Figure 7's Metadata bar)."""
        count = len(self.functions)
        return 2 + 2 * count + 2 * count + 4 * count + 2 * max(self.total_relocs, 1)

    @property
    def runtime_bytes(self):
        return self.handler_bytes + self.memcpy_bytes


# -- helpers ----------------------------------------------------------------------


def _item_offsets(function):
    """Byte offset of every item and label within *function*."""
    offsets = []
    labels = {function.name: 0}
    cursor = 0
    for item in function.items:
        offsets.append(cursor)
        if isinstance(item, Label):
            labels[item.name] = cursor
        elif isinstance(item, Instruction):
            cursor += instruction_length(item)
    return offsets, labels, cursor


def _is_direct_call(item, names):
    return (
        isinstance(item, Instruction)
        and item.mnemonic == "CALL"
        and item.src.mode is AddressingMode.IMMEDIATE
        and isinstance(item.src.value, Sym)
        and item.src.value.addend == 0
        and item.src.value.name in names
    )


def _is_absolute_branch(item):
    """``MOV #imm, PC`` -- the form BR expands to."""
    return (
        isinstance(item, Instruction)
        and item.mnemonic == "MOV"
        and item.dst is not None
        and item.dst.mode is AddressingMode.REGISTER
        and item.dst.register == PC
        and item.src.mode is AddressingMode.IMMEDIATE
    )


# -- pass 1: call-site rewriting -----------------------------------------------------


def _rewrite_call_sites(function, func_ids):
    rewritten = []
    for item in function.items:
        if not _is_direct_call(item, func_ids):
            rewritten.append(item)
            continue
        func_id = func_ids[item.src.value.name]
        rewritten.extend(
            [
                Instruction("MOV", src=imm(func_id), dst=absolute(Sym(CUR_FUNC))),
                Instruction(
                    "ADD", src=imm(1), dst=absolute(Sym(ACTIVE_TABLE, 2 * func_id))
                ),
                Instruction("CALL", src=absolute(Sym(REDIR_TABLE, 2 * func_id))),
                Instruction(
                    "SUB", src=imm(1), dst=absolute(Sym(ACTIVE_TABLE, 2 * func_id))
                ),
            ]
        )
    function.items = rewritten


# -- pass 2: jump-range legalisation ---------------------------------------------------


def legalize_jumps(function, counter=None):
    """Rewrite out-of-range PC-relative jumps (iterates to fixpoint)."""
    serial = counter if counter is not None else [0]
    while True:
        offsets, labels, _size = _item_offsets(function)
        for index, item in enumerate(function.items):
            if not (isinstance(item, Instruction) and item.is_jump):
                continue
            target = item.target
            if not isinstance(target, Sym) or target.name not in labels:
                continue
            delta = labels[target.name] + target.addend - (offsets[index] + 2)
            if _JUMP_MIN_WORDS <= delta // 2 <= _JUMP_MAX_WORDS:
                continue
            replacement = _legalize_one(item, serial)
            function.items[index : index + 1] = replacement
            break  # sizes changed; recompute offsets
        else:
            return


def _legalize_one(jump, serial):
    branch = Instruction("MOV", src=imm(jump.target), dst=reg(PC))
    if jump.mnemonic == "JMP":
        return [branch]
    serial[0] += 1
    skip = Label(f".Lsr_far_{serial[0]}")
    inverted = _INVERT.get(jump.mnemonic)
    if inverted is not None:
        # Figure 6 pattern: inverted jump over an absolute branch.
        return [Instruction(inverted, target=Sym(skip.name)), branch, skip]
    # JN has no inverse: jump-to-branch trampoline.
    take = Label(f".Lsr_take_{serial[0]}")
    return [
        Instruction(jump.mnemonic, target=Sym(take.name)),
        Instruction("JMP", target=Sym(skip.name)),
        take,
        branch,
        skip,
    ]


# -- pass 3: absolute-branch relocation ------------------------------------------------


def _collect_relocations(function, next_index):
    """Replace intra-function absolute branches with reloc-entry branches."""
    _offsets, labels, _size = _item_offsets(function)
    relocs = []
    for index, item in enumerate(function.items):
        if not _is_absolute_branch(item):
            continue
        value = item.src.value
        if not isinstance(value, Sym) or value.name not in labels:
            continue  # absolute branch out of the function: never relocated
        reloc_index = next_index + len(relocs)
        relocs.append(
            RelocInfo(
                index=reloc_index,
                target_label=value.name,
                target_offset=labels[value.name] + value.addend,
            )
        )
        function.items[index] = Instruction(
            "MOV",
            src=absolute(Sym(RELOC_TABLE, 2 * reloc_index)),
            dst=reg(PC),
        )
    return relocs


def _check_relocatable(function):
    """Reject remaining position-dependent constructs (jump tables...)."""
    label_names = {label.name for label in function.labels()} | {function.name}
    for item in function.items:
        if not isinstance(item, Instruction):
            continue
        for operand in (item.src, item.dst):
            if operand is None:
                continue
            if operand.mode is AddressingMode.SYMBOLIC:
                raise TransformError(
                    f"{function.name}: PC-relative data operand {operand} "
                    "is not relocatable"
                )
            value = getattr(operand, "value", None)
            if (
                isinstance(value, Sym)
                and value.name in label_names
                and operand.mode is AddressingMode.IMMEDIATE
                and not _is_absolute_branch(item)
            ):
                raise TransformError(
                    f"{function.name}: materialises code address {value} "
                    "(jump tables need the blacklist or a source rewrite, §4)"
                )


# -- metadata emission ---------------------------------------------------------------


def _function_size(function):
    return sum(
        instruction_length(item)
        for item in function.items
        if isinstance(item, Instruction)
    )


def _emit_metadata(program, metas, all_relocs, cost_model):
    meta_items = [
        Label(CUR_FUNC),
        DataItem("word", [0xFFFF]),
        Label(REDIR_TABLE),
        DataItem("word", [Sym(MISS_HANDLER)] * len(metas)),
        Label(ACTIVE_TABLE),
        DataItem("word", [0] * len(metas)),
        Label(FUNC_TABLE),
    ]
    functab = []
    for meta in metas:
        functab += [Sym(meta.name), meta.size]
    meta_items.append(DataItem("word", functab))
    meta_items.append(Label(RELOC_TABLE))
    if all_relocs:
        meta_items.append(
            DataItem("word", [Sym(reloc.target_label) for reloc in all_relocs])
        )
    else:
        meta_items.append(DataItem("word", [0]))
    program.sections[META_SECTION] = meta_items

    handler_bytes = cost_model.handler_size(len(all_relocs))
    program.sections[RUNTIME_SECTION] = [
        Label(MISS_HANDLER),
        DataItem("space", [handler_bytes]),
        Label(MEMCPY_AREA),
        DataItem("space", [cost_model.memcpy_bytes]),
    ]
    return handler_bytes


# -- entry point ------------------------------------------------------------------------


def instrument_for_swapram(program, blacklist=(), cost_model=None):
    """Apply the full SwapRAM static pass.

    Returns ``(instrumented_program, SwapRamMeta)``. *blacklist* names
    functions excluded from caching (paper §3.1); their call sites still
    work, they just always execute from NVM and never enter the tables.
    """
    cost_model = cost_model or RuntimeCostModel()
    instrumented = program.clone()
    blacklist = set(blacklist)
    candidates = [
        function
        for function in instrumented.functions
        if not function.blacklisted and function.name not in blacklist
    ]
    if not candidates:
        raise TransformError("no cacheable functions")
    func_ids = {function.name: index for index, function in enumerate(candidates)}

    # Static call graph, captured before call sites are rewritten.
    call_counts = {function.name: {} for function in candidates}
    for function in candidates:
        counts = call_counts[function.name]
        for item in function.items:
            if _is_direct_call(item, func_ids):
                callee = func_ids[item.src.value.name]
                counts[callee] = counts.get(callee, 0) + 1

    for function in instrumented.functions:
        _rewrite_call_sites(function, func_ids)
    serial = [0]
    for function in instrumented.functions:
        legalize_jumps(function, serial)

    metas = []
    all_relocs = []
    for function in candidates:
        relocs = _collect_relocations(function, len(all_relocs))
        all_relocs.extend(relocs)
        _check_relocatable(function)
        counts = call_counts[function.name]
        metas.append(
            FuncMeta(
                name=function.name,
                func_id=func_ids[function.name],
                size=_function_size(function),
                relocs=relocs,
                callees=sorted(counts, key=counts.get, reverse=True),
            )
        )

    handler_bytes = _emit_metadata(instrumented, metas, all_relocs, cost_model)
    meta = SwapRamMeta(
        functions=metas,
        handler_bytes=handler_bytes,
        memcpy_bytes=cost_model.memcpy_bytes,
    )
    return instrumented, meta
