"""Thrash detection and cache freezing (paper §5.4's future-work sketch).

On AES-like call patterns the circular queue keeps evicting code that is
about to run again; the paper suggests "temporarily pausing eviction to
'freeze' cache state". :class:`ThrashGuard` implements that: it watches
the fraction of recent misses that had to evict, and when the fraction
crosses a threshold it freezes the cache -- misses that would evict are
served from NVM instead (cheap: entry + decision + branch), while misses
that fit free space still cache. The freeze expires after a fixed number
of misses so phase changes can refill the cache.

Enabled via ``build_swapram(..., thrash_guard=ThrashGuard())``; off by
default to match the paper's evaluated system.
"""

from collections import deque


class ThrashGuard:
    """Sliding-window eviction-rate detector with timed freezes."""

    def __init__(self, window=48, threshold=0.6, freeze_misses=192):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.window = window
        self.threshold = threshold
        self.freeze_misses = freeze_misses
        self._history = deque(maxlen=window)
        self._frozen_remaining = 0
        self.freezes = 0

    @property
    def frozen(self):
        return self._frozen_remaining > 0

    def observe_miss(self, evicted):
        """Record one miss; returns True when the cache is (now) frozen.

        Call once per miss-handler invocation with whether the planned
        placement would evict live cache contents.
        """
        if self._frozen_remaining > 0:
            self._frozen_remaining -= 1
            if self._frozen_remaining == 0:
                self._history.clear()
            return True
        self._history.append(1 if evicted else 0)
        if (
            len(self._history) == self.window
            and sum(self._history) / self.window >= self.threshold
        ):
            self.freezes += 1
            self._frozen_remaining = self.freeze_misses
            return True
        return False
