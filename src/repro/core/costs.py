"""Cycle/fetch cost model for the hosted cache runtimes.

The paper's runtimes are C+assembly executing from FRAM; ours run
host-side (see DESIGN.md). To keep every reported quantity honest, each
modelled runtime instruction is *charged*: one or two instruction-word
fetches at real FRAM addresses inside the reserved runtime area (so the
hardware FRAM cache and wait-state machinery see them), plus unstalled
cycles, plus a dynamic-instruction count under the right attribution
(Figure 8's "miss handler" and "memcpy" categories).

Instruction-count constants approximate the MSP430 code each phase
would compile to; handler *size* constants are calibrated to the
paper's reported range (972-1844 bytes, average 1378 -- §5.2).
"""

from dataclasses import dataclass

from repro.machine.trace import Attribution


@dataclass(frozen=True)
class RuntimeCostModel:
    """Tunable constants for the SwapRAM runtime's modelled costs."""

    # Dynamic instruction counts per handler phase.
    entry_instructions: int = 10  # save args, load funcId, functab lookup
    decision_instructions: int = 6  # placement decision
    scan_instructions_per_node: int = 3  # queue walk per node inspected
    active_check_instructions: int = 3  # per flagged victim
    evict_instructions: int = 10  # per evicted function (metadata reset)
    reloc_instructions: int = 5  # per relocation entry written
    exit_instructions: int = 6  # restore args, branch out
    # Copy loop: MOV @Rs+, 0(Rd); ADD #2, Rd; DEC Rn; JNZ -- about nine
    # cycles per word, modelled as three average instructions.
    memcpy_instructions_per_word: int = 3
    memcpy_setup_instructions: int = 6

    # Average unstalled cycles per modelled instruction (mem-heavy code).
    cycles_per_instruction: int = 3

    # Static size model (bytes) for Figure 7's Runtime bar.
    handler_base_bytes: int = 900
    handler_bytes_per_reloc: int = 12
    memcpy_bytes: int = 64

    def handler_size(self, total_relocs):
        """Miss-handler code size: grows with relocatable branches (§5.2)."""
        return self.handler_base_bytes + self.handler_bytes_per_reloc * total_relocs


@dataclass(frozen=True)
class DataCacheCostModel:
    """Tunable constants for the data-plane cache runtime's costs.

    Hits are free of instruction overhead: the lookup is modelled as
    compiler-assisted region remapping (the access already addresses
    the SRAM line), so a hit is exactly one SRAM access -- the same
    assumption SwapRAM makes for code hits once the redirection entry
    points into SRAM. Everything else -- the miss path, the line-copy
    loops, the cleaning walk -- is charged instruction by instruction
    at real FRAM addresses inside the runtime's reserved area.
    """

    lookup_instructions: int = 0  # compiler-assisted remapping (see above)
    miss_instructions: int = 8  # tag probe, victim choice, bookkeeping
    writeback_instructions: int = 4  # per line written back (setup)
    clean_instructions: int = 4  # per cleaning-policy activation
    bypass_instructions: int = 1  # sequential-cutoff / promotion gate
    memcpy_setup_instructions: int = 4
    memcpy_instructions_per_word: int = 3  # same loop shape as SwapRAM's

    cycles_per_instruction: int = 3

    # Static size model (bytes) for the reserved FRAM runtime area.
    handler_bytes: int = 512
    memcpy_bytes: int = 64


class CostCharger:
    """Charges modelled instructions against the bus at real addresses."""

    def __init__(self, bus, area_base, area_bytes, cycles_per_instruction):
        self.bus = bus
        self.area_base = area_base
        self.area_words = max(area_bytes // 2, 1)
        self.cycles_per_instruction = cycles_per_instruction
        self._cursor = 0

    def begin_invocation(self):
        """Restart at the area base: each handler invocation re-executes
        the same code path, so repeated invocations touch the same FRAM
        addresses and benefit from the hardware read cache exactly as the
        real handler would."""
        self._cursor = 0

    def charge(self, instructions, attribution=Attribution.RUNTIME):
        """Charge *instructions* modelled instructions (fetches + cycles)."""
        bus = self.bus
        counters = bus.counters
        region_kind = bus.memory_map.kind_at(self.area_base)
        for index in range(instructions):
            bus.begin_instruction()
            address = self.area_base + 2 * (self._cursor % self.area_words)
            # Alternate 1- and 2-word instructions (realistic mix).
            words = 1 + (index & 1)
            with bus.attributed(attribution):
                bus.account_fetch(address, words)
            self._cursor += words
            counters.record_instruction(
                attribution, region_kind, self.cycles_per_instruction
            )
