"""One-call construction of a SwapRAM-enabled system.

``build_swapram`` runs the full pipeline the paper describes in §4:
compile (mini-C -> assembly), apply the static instrumentation pass,
link with the metadata/runtime sections in FRAM, reserve the SRAM cache
area, and install the miss handler. The returned system runs exactly
like a baseline board and exposes runtime statistics.
"""

from dataclasses import dataclass

from repro.core.costs import RuntimeCostModel
from repro.core.policy import CircularQueuePolicy
from repro.core.runtime import SwapRamRuntime
from repro.core.transform import instrument_for_swapram
from repro.machine.board import Board
from repro.toolchain.build import add_startup, compile_program
from repro.toolchain.linker import link


@dataclass
class SwapRamSystem:
    """A loaded board plus the SwapRAM runtime attached to it."""

    board: Board
    runtime: SwapRamRuntime
    meta: object
    linked: object

    def run(self, max_instructions=50_000_000):
        return self.board.run(max_instructions=max_instructions)

    @property
    def stats(self):
        return self.runtime.stats

    def size_report(self):
        """Figure 7 decomposition for this binary (bytes of NVM)."""
        sizes = self.linked.section_sizes
        return {
            "application": sizes["text"],
            "runtime": sizes.get("srruntime", 0),
            "metadata": sizes.get("srmeta", 0),
            "const_data": sizes.get("rodata", 0),
        }


def build_swapram(
    source_or_program,
    plan,
    frequency_mhz=24,
    policy_class=CircularQueuePolicy,
    blacklist=(),
    cost_model=None,
    cache_limit=None,
    thrash_guard=None,
    prefetcher=None,
    **board_kwargs,
):
    """Build a SwapRAM system for mini-C source or an assembly Program.

    *plan* chooses the memory configuration (normally ``unified``; the
    split-SRAM experiments pass ``standard`` with a cache reserve).
    *cache_limit* optionally caps the SRAM cache size in bytes.
    *thrash_guard* optionally enables the §5.4 freeze-on-thrash
    extension (pass a :class:`repro.core.thrash.ThrashGuard`);
    *prefetcher* optionally enables call-graph prefetching (pass a
    :class:`repro.core.prefetch.CallGraphPrefetcher`).
    """
    cost_model = cost_model or RuntimeCostModel()
    if isinstance(source_or_program, str):
        program = compile_program(source_or_program)
    else:
        program = add_startup(source_or_program)

    # The startup code is not instrumented (the paper's toolchain never
    # processes crt0), so the entry function it calls executes from NVM
    # and never enters the cache. Without this, `main` -- active for the
    # whole run -- would sit at the bottom of the circular queue and turn
    # every wrap-around placement into an eviction abort.
    blacklist = set(blacklist) | {"main"}

    instrumented, meta = instrument_for_swapram(
        program, blacklist=blacklist, cost_model=cost_model
    )
    linked = link(instrumented, plan)

    cache_size = linked.cache_size & ~1
    cache_base = (linked.cache_base + 1) & ~1
    if cache_limit is not None:
        cache_size = min(cache_size, cache_limit & ~1)
    policy = policy_class(cache_base, cache_size)

    board = Board(
        memory_map=linked.memory_map, frequency_mhz=frequency_mhz, **board_kwargs
    )
    board.load(linked.image)
    board.linked = linked
    runtime = SwapRamRuntime(
        board,
        linked.image,
        meta,
        policy,
        cost_model,
        thrash_guard=thrash_guard,
        prefetcher=prefetcher,
    )
    runtime.install()
    return SwapRamSystem(board=board, runtime=runtime, meta=meta, linked=linked)
