"""Cache memory structures / replacement policies (paper §3.4).

The data structure organising cached functions in SRAM *is* the
replacement policy. The paper's proof-of-concept uses a circular queue
("least-recently-cached" eviction, good density, evicts ancestors
rarely); it explicitly argues a stack ("most-recently-cached") is
counterproductive -- we implement both so the ablation benchmark can
show the difference -- and sketches priority-based schemes as future
work, which :class:`CostAwareQueuePolicy` explores.
"""

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class CacheNode:
    """One cached function: its id and SRAM placement."""

    func_id: int
    address: int
    size: int

    @property
    def end(self):
        return self.address + self.size

    def identity(self):
        """The victim/occupant identity observability consumers record.

        Plain data -- funcId plus the SRAM line (address/size) it
        occupies -- so eviction-causality reports and timelines can
        name exactly which cache bytes changed hands.
        """
        return {
            "func_id": self.func_id,
            "address": self.address,
            "size": self.size,
        }


@dataclass
class Placement:
    """A planned insertion: where to put the function, whom to evict."""

    address: int
    victims: List[CacheNode] = field(default_factory=list)
    nodes_scanned: int = 0


class CachePolicy:
    """Common bookkeeping for SRAM function caches."""

    name = "abstract"

    def __init__(self, base, size):
        self.base = base
        self.size = size
        self.end = base + size
        self.nodes: List[CacheNode] = []
        #: Victims removed by the most recent :meth:`commit` -- the
        #: eviction-identity surface observability layers read. Purely
        #: informational: policies never consult it, so exposing it
        #: cannot change placement decisions or run totals.
        self.last_evictions: tuple = ()

    def reset(self):
        self.nodes = []
        self.last_evictions = ()

    def lookup(self, func_id) -> Optional[CacheNode]:
        for node in self.nodes:
            if node.func_id == func_id:
                return node
        return None

    def used_bytes(self):
        return sum(node.size for node in self.nodes)

    def free_bytes(self):
        """Bytes of the cache window not covered by any node.

        Computed by scanning the gaps between address-ordered nodes
        rather than as ``size - used_bytes()``, so that
        ``used + free == size`` genuinely certifies the allocator's
        consistency: it holds only when every node lies inside the
        window and no two nodes overlap.
        """
        free = 0
        cursor = self.base
        for node in sorted(self.nodes, key=lambda node: node.address):
            free += max(node.address - cursor, 0)
            cursor = max(cursor, node.end)
        free += max(self.end - cursor, 0)
        return free

    def _overlapping(self, address, size):
        lo, hi = address, address + size
        return [node for node in self.nodes if node.address < hi and node.end > lo]

    def plan(self, size, is_active=None) -> Optional[Placement]:
        """Choose a landing zone for *size* bytes.

        *is_active* (func_id -> bool) lets the policy avoid planning an
        eviction the runtime would have to abort (paper §3.3.2: flagging
        a function does not guarantee it can be evicted). A returned
        placement may still contain active victims -- the runtime's
        charged active-counter check is the authority and falls back to
        NVM execution.
        """
        raise NotImplementedError

    def commit(self, func_id, placement, size) -> CacheNode:
        """Apply a planned insertion after the caller evicted the victims."""
        self.last_evictions = tuple(placement.victims)
        for victim in placement.victims:
            self.nodes.remove(victim)
        node = CacheNode(func_id, placement.address, size)
        self.nodes.append(node)
        self._after_commit(node)
        return node

    def _after_commit(self, node):
        pass


class CircularQueuePolicy(CachePolicy):
    """The paper's design: FIFO placement around a circular buffer.

    New functions go after the most recently cached one, wrapping to the
    bottom of the cache when the end is reached (leaving a small gap --
    the density cost Figure 5 shows). Anything physically overlapping
    the landing zone is flagged for eviction, which makes replacement
    least-recently-cached.
    """

    name = "queue"

    def __init__(self, base, size):
        super().__init__(base, size)
        self.tail = base

    def reset(self):
        super().reset()
        self.tail = self.base

    def plan(self, size, is_active=None):
        if size > self.size:
            return None
        address = self.tail
        wrapped = False
        if address + size > self.end:
            address = self.base  # wrap, leaving a gap at the top
            wrapped = True
        scanned = 0
        best = None
        for _attempt in range(len(self.nodes) + 2):
            victims = self._overlapping(address, size)
            scanned += len(victims) + 1
            best = Placement(address, victims, nodes_scanned=scanned + 1)
            if is_active is None:
                return best
            blocker = next(
                (victim for victim in victims if is_active(victim.func_id)), None
            )
            if blocker is None:
                return best
            # Skip past the live function and retry after it (§3.3.2's
            # "flagged but not evictable" case) instead of giving up.
            address = blocker.end
            if address + size > self.end:
                if wrapped:
                    return best  # nowhere is free of live code: runtime aborts
                address = self.base
                wrapped = True
        return best

    def _after_commit(self, node):
        self.tail = node.end


class StackPolicy(CachePolicy):
    """The §3.4 strawman: contiguous stack, most-recently-cached eviction.

    Maximises density (no gaps) but evicts the newest functions first --
    exactly the code most likely to be hot or on the call stack, so
    expect more eviction aborts and worse hit behaviour.
    """

    name = "stack"

    def __init__(self, base, size):
        super().__init__(base, size)
        self.top = base

    def reset(self):
        super().reset()
        self.top = self.base

    def plan(self, size, is_active=None):
        if size > self.size:
            return None
        if self.top + size <= self.end:
            return Placement(self.top, [], nodes_scanned=len(self.nodes))
        # Pop newest entries until the new function fits below the end.
        victims = []
        top = self.top
        ordered = sorted(self.nodes, key=lambda node: node.address)
        while ordered and top + size > self.end:
            victim = ordered.pop()  # most recently cached is highest
            victims.append(victim)
            top = victim.address
        if top + size > self.end:
            victims = list(self.nodes)
            top = self.base
        return Placement(top, victims, nodes_scanned=len(self.nodes))

    def _after_commit(self, node):
        self.top = node.end


class CostAwareQueuePolicy(CircularQueuePolicy):
    """Future-work variant (§3.4): discourage evicting large functions.

    Planning proceeds like the circular queue, but when the flagged
    victims' total size is disproportionate to the incoming function
    (re-copying them later would cost more than the expected saving),
    the plan is marked not-worth-it by returning None -- the runtime
    then executes the function from NVM instead of thrashing the cache.
    """

    name = "cost_aware"

    def __init__(self, base, size, max_victim_ratio=3.0):
        super().__init__(base, size)
        self.max_victim_ratio = max_victim_ratio

    def plan(self, size, is_active=None):
        placement = super().plan(size, is_active)
        if placement is None:
            return None
        victim_bytes = sum(victim.size for victim in placement.victims)
        if victim_bytes > self.max_victim_ratio * max(size, 1):
            return None
        return placement


POLICIES = {
    policy.name: policy
    for policy in (CircularQueuePolicy, StackPolicy, CostAwareQueuePolicy)
}
