"""Cache memory structures / replacement and cleaning policies.

Two policy families live here so every cache subsystem shares one
registry surface:

* **Replacement** (paper §3.4) -- the data structure organising cached
  functions in SRAM *is* the replacement policy. The paper's
  proof-of-concept uses a circular queue ("least-recently-cached"
  eviction, good density, evicts ancestors rarely); it explicitly
  argues a stack ("most-recently-cached") is counterproductive -- we
  implement both so the ablation benchmark can show the difference --
  and sketches priority-based schemes as future work, which
  :class:`CostAwareQueuePolicy` explores. Registered in
  :data:`POLICIES`.
* **Cleaning** -- when the data-plane cache (:mod:`repro.datacache`)
  runs write-back, dirty lines accumulate and something must decide
  when to write them to FRAM. The strategies are modeled on Open-CAS:
  :class:`AlruCleaning` (lazy, age-gated, LRU-dirty-first) and
  :class:`AcpCleaning` (aggressive, periodic, address order), plus
  :class:`NopCleaning` (evict/flush only). Registered in
  :data:`CLEANING_POLICIES`.

:func:`lookup_policy` is the shared entry point both SwapRAM and the
data cache resolve names through.
"""

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class CacheNode:
    """One cached function: its id and SRAM placement."""

    func_id: int
    address: int
    size: int

    @property
    def end(self):
        return self.address + self.size

    def identity(self):
        """The victim/occupant identity observability consumers record.

        Plain data -- funcId plus the SRAM line (address/size) it
        occupies -- so eviction-causality reports and timelines can
        name exactly which cache bytes changed hands.
        """
        return {
            "func_id": self.func_id,
            "address": self.address,
            "size": self.size,
        }


@dataclass
class Placement:
    """A planned insertion: where to put the function, whom to evict."""

    address: int
    victims: List[CacheNode] = field(default_factory=list)
    nodes_scanned: int = 0


class CachePolicy:
    """Common bookkeeping for SRAM function caches."""

    name = "abstract"

    def __init__(self, base, size):
        self.base = base
        self.size = size
        self.end = base + size
        self.nodes: List[CacheNode] = []
        #: Victims removed by the most recent :meth:`commit` -- the
        #: eviction-identity surface observability layers read. Purely
        #: informational: policies never consult it, so exposing it
        #: cannot change placement decisions or run totals.
        self.last_evictions: tuple = ()

    def reset(self):
        self.nodes = []
        self.last_evictions = ()

    def lookup(self, func_id) -> Optional[CacheNode]:
        for node in self.nodes:
            if node.func_id == func_id:
                return node
        return None

    def used_bytes(self):
        return sum(node.size for node in self.nodes)

    def free_bytes(self):
        """Bytes of the cache window not covered by any node.

        Computed by scanning the gaps between address-ordered nodes
        rather than as ``size - used_bytes()``, so that
        ``used + free == size`` genuinely certifies the allocator's
        consistency: it holds only when every node lies inside the
        window and no two nodes overlap.
        """
        free = 0
        cursor = self.base
        for node in sorted(self.nodes, key=lambda node: node.address):
            free += max(node.address - cursor, 0)
            cursor = max(cursor, node.end)
        free += max(self.end - cursor, 0)
        return free

    def _overlapping(self, address, size):
        lo, hi = address, address + size
        return [node for node in self.nodes if node.address < hi and node.end > lo]

    def plan(self, size, is_active=None) -> Optional[Placement]:
        """Choose a landing zone for *size* bytes.

        *is_active* (func_id -> bool) lets the policy avoid planning an
        eviction the runtime would have to abort (paper §3.3.2: flagging
        a function does not guarantee it can be evicted). A returned
        placement may still contain active victims -- the runtime's
        charged active-counter check is the authority and falls back to
        NVM execution.
        """
        raise NotImplementedError

    def commit(self, func_id, placement, size) -> CacheNode:
        """Apply a planned insertion after the caller evicted the victims."""
        self.last_evictions = tuple(placement.victims)
        for victim in placement.victims:
            self.nodes.remove(victim)
        node = CacheNode(func_id, placement.address, size)
        self.nodes.append(node)
        self._after_commit(node)
        return node

    def _after_commit(self, node):
        pass


class CircularQueuePolicy(CachePolicy):
    """The paper's design: FIFO placement around a circular buffer.

    New functions go after the most recently cached one, wrapping to the
    bottom of the cache when the end is reached (leaving a small gap --
    the density cost Figure 5 shows). Anything physically overlapping
    the landing zone is flagged for eviction, which makes replacement
    least-recently-cached.
    """

    name = "queue"

    def __init__(self, base, size):
        super().__init__(base, size)
        self.tail = base

    def reset(self):
        super().reset()
        self.tail = self.base

    def plan(self, size, is_active=None):
        if size > self.size:
            return None
        address = self.tail
        wrapped = False
        if address + size > self.end:
            address = self.base  # wrap, leaving a gap at the top
            wrapped = True
        scanned = 0
        best = None
        for _attempt in range(len(self.nodes) + 2):
            victims = self._overlapping(address, size)
            scanned += len(victims) + 1
            best = Placement(address, victims, nodes_scanned=scanned + 1)
            if is_active is None:
                return best
            blocker = next(
                (victim for victim in victims if is_active(victim.func_id)), None
            )
            if blocker is None:
                return best
            # Skip past the live function and retry after it (§3.3.2's
            # "flagged but not evictable" case) instead of giving up.
            address = blocker.end
            if address + size > self.end:
                if wrapped:
                    return best  # nowhere is free of live code: runtime aborts
                address = self.base
                wrapped = True
        return best

    def _after_commit(self, node):
        self.tail = node.end


class StackPolicy(CachePolicy):
    """The §3.4 strawman: contiguous stack, most-recently-cached eviction.

    Maximises density (no gaps) but evicts the newest functions first --
    exactly the code most likely to be hot or on the call stack, so
    expect more eviction aborts and worse hit behaviour.
    """

    name = "stack"

    def __init__(self, base, size):
        super().__init__(base, size)
        self.top = base

    def reset(self):
        super().reset()
        self.top = self.base

    def plan(self, size, is_active=None):
        if size > self.size:
            return None
        if self.top + size <= self.end:
            return Placement(self.top, [], nodes_scanned=len(self.nodes))
        # Pop newest entries until the new function fits below the end.
        victims = []
        top = self.top
        ordered = sorted(self.nodes, key=lambda node: node.address)
        while ordered and top + size > self.end:
            victim = ordered.pop()  # most recently cached is highest
            victims.append(victim)
            top = victim.address
        if top + size > self.end:
            victims = list(self.nodes)
            top = self.base
        return Placement(top, victims, nodes_scanned=len(self.nodes))

    def _after_commit(self, node):
        self.top = node.end


class CostAwareQueuePolicy(CircularQueuePolicy):
    """Future-work variant (§3.4): discourage evicting large functions.

    Planning proceeds like the circular queue, but when the flagged
    victims' total size is disproportionate to the incoming function
    (re-copying them later would cost more than the expected saving),
    the plan is marked not-worth-it by returning None -- the runtime
    then executes the function from NVM instead of thrashing the cache.
    """

    name = "cost_aware"

    def __init__(self, base, size, max_victim_ratio=3.0):
        super().__init__(base, size)
        self.max_victim_ratio = max_victim_ratio

    def plan(self, size, is_active=None):
        placement = super().plan(size, is_active)
        if placement is None:
            return None
        victim_bytes = sum(victim.size for victim in placement.victims)
        if victim_bytes > self.max_victim_ratio * max(size, 1):
            return None
        return placement


POLICIES = {
    policy.name: policy
    for policy in (CircularQueuePolicy, StackPolicy, CostAwareQueuePolicy)
}


class CleaningPolicy:
    """When to write dirty data-cache lines back, outside of evictions.

    ``tick(cache)`` is consulted once per application access to the
    cached window and returns the lines to clean *now* (possibly none).
    *cache* is any object exposing ``ticks`` (monotonic access count)
    and ``dirty_lines()`` (line objects carrying ``tag``, ``set_index``,
    ``dirty_since`` and ``last_tick``). Policies never touch memory
    themselves -- the
    runtime performs the writebacks it is told to, so every cleaning
    decision is charged as real bus traffic.
    """

    name = "abstract"

    def reset(self):
        pass

    def tick(self, cache):
        raise NotImplementedError

    def describe(self):
        """Deterministic plain-data identity for reports and sweeps."""
        return {"name": self.name}


class NopCleaning(CleaningPolicy):
    """Never clean: dirty lines persist until eviction or final flush.

    The maximum-deferral corner -- cheapest while running, and the
    worst case for crash consistency (every dirty line is exposed to a
    power failure for its whole residency).
    """

    name = "none"

    def tick(self, cache):
        return ()


class AlruCleaning(CleaningPolicy):
    """Open-CAS ALRU-style lazy cleaning.

    Every *interval* accesses, clean up to *batch* dirty lines that
    have gone *stale* -- not touched for at least *age* accesses --
    least recently used first. Hot lines are left alone (they are
    likely to be written again, and cleaning them early would waste
    FRAM writes), so a busy line is cleaned once when it goes cold
    instead of once per store burst.
    """

    name = "alru"

    def __init__(self, interval=256, batch=1, age=1024):
        self.interval = interval
        self.batch = batch
        self.age = age

    def tick(self, cache):
        if cache.ticks % self.interval:
            return ()
        ripe = [
            line
            for line in cache.dirty_lines()
            if cache.ticks - line.last_tick >= self.age
        ]
        ripe.sort(key=lambda line: (line.last_tick, line.tag))
        return ripe[: self.batch]

    def describe(self):
        return {
            "name": self.name,
            "interval": self.interval,
            "batch": self.batch,
            "age": self.age,
        }


class AcpCleaning(CleaningPolicy):
    """Open-CAS ACP-style aggressive cleaning.

    Every *interval* accesses, clean up to *batch* dirty lines in
    ascending address order regardless of age. Keeps the dirty
    population near zero (shortest crash-exposure window) at the price
    of re-writing hot lines -- and the address order means FRAM
    durability follows line layout, not program order, which is exactly
    the reordering hazard the fault harness demonstrates.
    """

    name = "acp"

    def __init__(self, interval=256, batch=1):
        self.interval = interval
        self.batch = batch

    def tick(self, cache):
        if cache.ticks % self.interval:
            return ()
        dirty = sorted(cache.dirty_lines(), key=lambda line: line.tag)
        return dirty[: self.batch]

    def describe(self):
        return {"name": self.name, "interval": self.interval, "batch": self.batch}


CLEANING_POLICIES = {
    policy.name: policy for policy in (NopCleaning, AlruCleaning, AcpCleaning)
}

#: The registry surface shared by every cache subsystem: SwapRAM and
#: the block cache resolve replacement policies, the data cache both.
POLICY_REGISTRIES = {
    "replacement": POLICIES,
    "cleaning": CLEANING_POLICIES,
}


def lookup_policy(kind, name):
    """Resolve a policy class from the shared registry; loud on miss."""
    registry = POLICY_REGISTRIES.get(kind)
    if registry is None:
        raise KeyError(
            f"unknown policy kind {kind!r} "
            f"(have: {', '.join(sorted(POLICY_REGISTRIES))})"
        )
    policy = registry.get(name)
    if policy is None:
        raise KeyError(
            f"unknown {kind} policy {name!r} "
            f"(have: {', '.join(sorted(registry))})"
        )
    return policy


def make_cleaning(spec):
    """Build a cleaning policy from a spec string.

    ``"alru"`` takes the defaults; ``"alru:interval=128,age=64"``
    overrides constructor keywords. Raises ``ValueError`` on malformed
    specs -- callers (CLI, sweep executors) surface it verbatim.
    """
    if isinstance(spec, CleaningPolicy):
        return spec
    name, _, params = str(spec).partition(":")
    try:
        policy_class = lookup_policy("cleaning", name)
    except KeyError as error:
        raise ValueError(str(error)) from None
    kwargs = {}
    if params:
        for pair in params.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key:
                raise ValueError(
                    f"malformed cleaning parameter {pair!r} in {spec!r} "
                    f"(expected key=int)"
                )
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"cleaning parameter {key!r} in {spec!r} must be an "
                    f"integer, got {value!r}"
                ) from None
    try:
        return policy_class(**kwargs)
    except TypeError as error:
        raise ValueError(f"bad cleaning spec {spec!r}: {error}") from None
