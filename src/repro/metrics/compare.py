"""The regression gate between two ``BENCH_*.json`` snapshots.

``compare_snapshots(old, new)`` matches runs by (benchmark, system,
plan) and checks every gated guest metric against a per-metric relative
threshold: a metric regresses when ``new > old * (1 + threshold)``.
The boundary is *inclusive* -- a metric landing exactly on the limit
passes -- so pick a threshold strictly below the cliff you want to
catch (0.9, not 1.0, for exact doublings). Guest quantities are
deterministic, so even the default thresholds are about intent, not
noise -- they are deliberately generous (catch the 2x cliff, wave
through the 5% wobble a refactor may trade away). Host
wall-clock metrics are recorded in every snapshot but **not gated** by
default: they compare a CI runner against a laptop. Pass
``host_threshold`` to gate them too.

Improvements never fail the gate, and a lost run does: a benchmark that
was measured in the old snapshot but is missing (or newly DNF) in the
new one is itself a regression -- silent coverage loss is how perf
cliffs hide.
"""

from dataclasses import dataclass, field

from repro.experiments.report import format_table

#: Relative increase tolerated per guest metric (0.5 = +50%).
DEFAULT_THRESHOLDS = {
    "total_cycles": 0.5,
    "unstalled_cycles": 0.5,
    "stall_cycles": 0.75,
    "instructions": 0.5,
    "fram_accesses": 0.5,
    "sram_accesses": 0.75,
    "energy_nj": 0.5,
    "runtime_us": 0.5,
}

#: Host metrics gated only when a host_threshold is given.
HOST_METRICS = ("run_s", "build_s")


@dataclass
class MetricDelta:
    """One metric of one run, old vs new."""

    benchmark: str
    system: str
    plan: str
    metric: str
    old: float
    new: float
    threshold: float
    regressed: bool

    @property
    def ratio(self):
        return self.new / self.old if self.old else float("inf")

    @property
    def label(self):
        return f"{self.benchmark}/{self.system}"


@dataclass
class CompareReport:
    """Everything the gate decided, renderable as a text table."""

    deltas: list = field(default_factory=list)
    missing: list = field(default_factory=list)  # (key, reason)
    added: list = field(default_factory=list)
    #: (benchmark, system, plan) -> [(phase, old_s, new_s), ...] from the
    #: snapshots' host PhaseTimer records -- what attributes a wall-clock
    #: regression to compile vs build vs run.
    phases: dict = field(default_factory=dict)

    @property
    def regressions(self):
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def ok(self):
        return not self.regressions and not self.missing

    def render(self, all_rows=False):
        """Text table of regressions (or every delta with *all_rows*)."""
        lines = []
        rows = [
            [
                delta.label,
                delta.metric,
                _fmt(delta.old),
                _fmt(delta.new),
                f"{delta.ratio:.3f}x",
                f"<= {1 + delta.threshold:.2f}x",
                "REGRESSED" if delta.regressed else "ok",
            ]
            for delta in self.deltas
            if all_rows or delta.regressed
        ]
        if rows:
            lines.append(
                format_table(
                    ("run", "metric", "old", "new", "ratio", "gate", "status"),
                    rows,
                    title="Snapshot comparison",
                )
            )
        # Attribute each shown run's time to phases, so a perf-gate
        # failure says *where* the seconds went, not just that they grew.
        shown = sorted(
            {
                (delta.benchmark, delta.system, delta.plan)
                for delta in self.deltas
                if all_rows or delta.regressed
            }
        )
        for key in shown:
            spans = self.phases.get(key)
            if not spans:
                continue
            parts = [
                f"{phase} {old_s:.3f}s -> {new_s:.3f}s ({new_s - old_s:+.3f}s)"
                for phase, old_s, new_s in spans
            ]
            lines.append(f"phases {key[0]}/{key[1]}: {', '.join(parts)}")
        for key, reason in self.missing:
            lines.append(f"MISSING {'/'.join(key)}: {reason}")
        for key in self.added:
            lines.append(f"new run {'/'.join(key)} (no old baseline; not gated)")
        verdict = (
            "OK: no regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} metric regression(s), "
            f"{len(self.missing)} missing run(s)"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value)) if isinstance(value, float) else str(value)


def _phase_spans(old_run, new_run):
    """``[(phase, old_s, new_s), ...]`` where both snapshots timed it.

    Phases iterate in the old snapshot's recorded order (compile,
    build, run for execute rows; capture, run for replay rows), so the
    attribution lines read in pipeline order.
    """
    old_phases = (old_run.get("host") or {}).get("phases") or {}
    new_phases = (new_run.get("host") or {}).get("phases") or {}
    spans = []
    for phase, old_span in old_phases.items():
        new_span = new_phases.get(phase)
        if not isinstance(old_span, dict) or not isinstance(new_span, dict):
            continue
        old_s, new_s = old_span.get("seconds"), new_span.get("seconds")
        if old_s is None or new_s is None:
            continue
        spans.append((phase, old_s, new_s))
    return spans


def _index(snapshot):
    return {
        (run["benchmark"], run["system"], run["plan"]): run
        for run in snapshot["runs"]
    }


def compare_snapshots(
    old,
    new,
    thresholds=None,
    default_threshold=None,
    host_threshold=None,
):
    """Gate *new* against *old*; returns a :class:`CompareReport`.

    *thresholds* overrides :data:`DEFAULT_THRESHOLDS` per metric name;
    *default_threshold*, when given, applies to every gated guest
    metric not explicitly overridden. *host_threshold* additionally
    gates the host wall-clock metrics (off by default).
    """
    gate = dict(DEFAULT_THRESHOLDS)
    if default_threshold is not None:
        gate = {name: default_threshold for name in gate}
    if thresholds:
        gate.update(thresholds)

    old_runs = _index(old)
    new_runs = _index(new)
    report = CompareReport()
    report.added = sorted(set(new_runs) - set(old_runs))

    for key in sorted(old_runs):
        old_run = old_runs[key]
        new_run = new_runs.get(key)
        if new_run is None:
            report.missing.append((key, "run absent from new snapshot"))
            continue
        if old_run.get("dnf"):
            continue  # nothing measured to gate against
        if new_run.get("dnf"):
            report.missing.append((key, "newly DNF (did not fit)"))
            continue
        benchmark, system, plan = key
        spans = _phase_spans(old_run, new_run)
        if spans:
            report.phases[key] = spans
        for metric, threshold in sorted(gate.items()):
            old_value = old_run["guest"].get(metric)
            new_value = new_run["guest"].get(metric)
            if old_value is None or new_value is None:
                continue
            if not old_value:
                # Nothing to take a ratio against; a metric springing
                # from exactly zero is surfaced but never gated.
                continue
            report.deltas.append(
                MetricDelta(
                    benchmark,
                    system,
                    plan,
                    metric,
                    old_value,
                    new_value,
                    threshold,
                    regressed=new_value > old_value * (1 + threshold),
                )
            )
        if host_threshold is not None:
            for metric in HOST_METRICS:
                old_value = old_run.get("host", {}).get(metric)
                new_value = new_run.get("host", {}).get(metric)
                if not old_value or new_value is None:
                    continue
                report.deltas.append(
                    MetricDelta(
                        benchmark,
                        system,
                        plan,
                        f"host.{metric}",
                        old_value,
                        new_value,
                        host_threshold,
                        regressed=new_value > old_value * (1 + host_threshold),
                    )
                )
    return report
