"""Continuous performance telemetry: metrics, snapshots, the gate.

The metrics layer is the quantitative half of the observability story
(:mod:`repro.obs` is the qualitative half): lightweight counters,
gauges, histograms and phase timers with the same zero-cost-when-
detached discipline -- the cache runtimes carry an opt-in ``metrics``
hook that is ``None`` unless a :class:`MetricsSession` is attached, and
a detached run executes the seed hot path unchanged.

* :mod:`repro.metrics.registry` -- the metric primitives and
  :class:`PhaseTimer`, the single host-timing code path;
* :mod:`repro.metrics.instrument` -- attach/detach glue and derived
  rates over ``SwapRamStats``/``BlockCacheStats``/``RunResult``;
* :mod:`repro.metrics.snapshot` -- the ``BENCH_<n>.json`` trajectory;
* :mod:`repro.metrics.compare` -- the regression gate CI runs;
* :mod:`repro.metrics.cli` -- the ``repro bench`` subcommand.
"""

from repro.metrics.compare import (
    CompareReport,
    DEFAULT_THRESHOLDS,
    MetricDelta,
    compare_snapshots,
)
from repro.metrics.instrument import (
    MetricsSession,
    derive_run_metrics,
    derive_stats_metrics,
)
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
)
from repro.metrics.snapshot import (
    SCHEMA,
    load_snapshot,
    next_snapshot_path,
    snapshot_run,
    take_snapshot,
    validate_snapshot,
    write_snapshot,
)

__all__ = [
    "CompareReport",
    "Counter",
    "DEFAULT_THRESHOLDS",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "MetricsSession",
    "PhaseTimer",
    "SCHEMA",
    "compare_snapshots",
    "derive_run_metrics",
    "derive_stats_metrics",
    "load_snapshot",
    "next_snapshot_path",
    "snapshot_run",
    "take_snapshot",
    "validate_snapshot",
    "write_snapshot",
]
