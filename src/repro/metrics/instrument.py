"""Attaching metrics to built systems, and deriving rates from stats.

:class:`MetricsSession` is the metrics twin of
:class:`~repro.obs.session.TraceSession`: it hands a
:class:`~repro.metrics.registry.MetricsRegistry` to the runtime's
opt-in ``metrics`` hook (``SwapRamRuntime`` / ``BlockCacheRuntime``)
and times the attached span through a :class:`PhaseTimer`. Attach and
detach are idempotent and restore exactly what was there before, so a
session can wrap any target -- including one that already carries a
registry -- without clobbering it.

The derivation helpers turn the exact counters the runtimes already
keep (:class:`~repro.core.runtime.SwapRamStats`,
:class:`~repro.blockcache.runtime.BlockCacheStats`) and a finished
:class:`~repro.machine.board.RunResult` into the rate metrics the
snapshot gate tracks: miss/evict/abort rates, copied bytes, host
instructions per second.
"""

from repro.metrics.registry import MetricsRegistry, PhaseTimer

RUN_PHASE = "run"


class MetricsSession:
    """A live metrics attachment to one board/system."""

    def __init__(self, target, registry, timer, previous):
        self.target = target
        self.registry = registry
        self.timer = timer
        self._previous = previous
        self._attached = True

    @classmethod
    def attach(cls, target, registry=None, timer=None):
        """Attach *registry* to the target's runtime hook (if any).

        Works on a bare :class:`~repro.machine.board.Board` too -- the
        registry then only receives derived metrics, never hot-path
        updates, because baseline boards have no runtime.
        """
        registry = registry if registry is not None else MetricsRegistry()
        timer = timer if timer is not None else PhaseTimer()
        runtime = getattr(target, "runtime", None)
        previous = getattr(runtime, "metrics", None)
        if runtime is not None:
            runtime.metrics = registry
        timer.start(RUN_PHASE)
        return cls(target, registry, timer, previous)

    def detach(self):
        """Restore the runtime's previous hook value; idempotent."""
        if not self._attached:
            return self
        self._attached = False
        if self.timer.running(RUN_PHASE):
            self.timer.stop(RUN_PHASE)
        runtime = getattr(self.target, "runtime", None)
        if runtime is not None:
            runtime.metrics = self._previous
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False

    @property
    def host_seconds(self):
        return self.timer.seconds(RUN_PHASE)

    def finish(self, result=None):
        """Detach and fold the run's derived metrics into the registry."""
        self.detach()
        stats = getattr(self.target, "stats", None)
        if result is not None:
            derive_run_metrics(self.registry, result, self.host_seconds)
        if stats is not None:
            derive_stats_metrics(self.registry, stats)
        return self


def derive_run_metrics(registry, result, host_seconds=None):
    """Guest totals (and host throughput) as gauges on *registry*."""
    record = result.as_dict() if hasattr(result, "as_dict") else dict(result)
    for key in (
        "instructions",
        "unstalled_cycles",
        "stall_cycles",
        "total_cycles",
        "fram_accesses",
        "sram_accesses",
        "runtime_us",
        "energy_nj",
    ):
        registry.gauge(f"guest.{key}").set(record[key])
    if host_seconds:
        registry.gauge("host.seconds").set(host_seconds)
        registry.gauge("host.instructions_per_s").set(
            record["instructions"] / host_seconds
        )
    return registry


def derive_stats_metrics(registry, stats):
    """Rate metrics over a runtime's stats counters.

    Dispatches on shape: data-cache stats carry ``lost_dirty_lines``
    (checked first -- they also expose a ``misses`` property), SwapRAM
    stats carry ``misses``/``caches``/``evictions``/``aborts``,
    block-cache stats carry ``entries``/``hits``. Rates are per
    miss-handler entry so they stay comparable across cache-size and
    policy changes.
    """
    if hasattr(stats, "lost_dirty_lines"):  # DataCacheStats
        accesses = max(stats.accesses, 1)
        registry.gauge("datacache.hit_rate").set(stats.hits / accesses)
        registry.gauge("datacache.miss_rate").set(stats.misses / accesses)
        registry.gauge("datacache.bypass_rate").set(stats.bypasses / accesses)
        registry.gauge("datacache.writeback_rate").set(
            stats.writebacks / accesses
        )
        registry.gauge("datacache.clean_rate").set(
            stats.clean_writebacks / accesses
        )
        registry.gauge("datacache.lost_dirty_lines").set(
            stats.lost_dirty_lines
        )
    elif hasattr(stats, "entries"):  # BlockCacheStats
        entries = max(stats.entries, 1)
        registry.gauge("blockcache.hit_rate").set(stats.hits / entries)
        registry.gauge("blockcache.miss_rate").set(stats.misses / entries)
        registry.gauge("blockcache.flush_rate").set(stats.flushes / entries)
        registry.gauge("blockcache.copy_bytes").set(2 * stats.words_copied)
    elif hasattr(stats, "misses"):  # SwapRamStats
        misses = max(stats.misses, 1)
        registry.gauge("swapram.cache_rate").set(stats.caches / misses)
        registry.gauge("swapram.evict_rate").set(stats.evictions / misses)
        registry.gauge("swapram.abort_rate").set(stats.aborts / misses)
        registry.gauge("swapram.nvm_fallback_rate").set(
            stats.nvm_fallbacks / misses
        )
        registry.gauge("swapram.copy_bytes").set(2 * stats.words_copied)
        registry.gauge("swapram.thrash_ratio").set(stats.thrash_ratio)
    return registry
