"""The ``repro bench`` subcommand: snapshot, compare, validate.

::

    python -m repro bench snapshot                    # next BENCH_<n>.json
    python -m repro bench snapshot --out results/bench/new.json
    python -m repro bench snapshot --benchmarks crc rc4 --systems swapram
    python -m repro bench compare BENCH_1.json BENCH_2.json
    python -m repro bench compare OLD NEW --default-threshold 1.0 --all
    python -m repro bench compare OLD NEW --threshold total_cycles=0.1
    python -m repro bench validate BENCH_1.json

``snapshot`` runs the quick benchmark matrix (see
:mod:`repro.metrics.snapshot`) and writes a schema-versioned snapshot;
``compare`` gates a new snapshot against a baseline and exits nonzero
on regression -- this is what CI's perf-snapshot job runs; ``validate``
schema-checks a snapshot file.
"""

import argparse
import sys

from repro.bench import BENCHMARK_NAMES, QUICK_NAMES
from repro.metrics.compare import compare_snapshots
from repro.metrics.snapshot import (
    DEFAULT_SYSTEMS,
    load_snapshot,
    take_snapshot,
    validate_snapshot,
    write_snapshot,
)
from repro.toolchain import PLANS


def _parser():
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Performance snapshots (BENCH_<n>.json) and the "
        "regression gate between them.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    snapshot = commands.add_parser(
        "snapshot", help="run the benchmark matrix and write a snapshot"
    )
    snapshot.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(QUICK_NAMES),
        choices=BENCHMARK_NAMES,
        metavar="NAME",
        help=f"benchmarks to measure (default: {' '.join(QUICK_NAMES)})",
    )
    snapshot.add_argument(
        "--systems",
        nargs="+",
        default=list(DEFAULT_SYSTEMS),
        choices=(
            "baseline",
            "swapram",
            "block",
            "swapram-replay",
            "datacache-wt",
            "datacache-wb",
        ),
        help=f"systems to measure (default: {' '.join(DEFAULT_SYSTEMS)}; "
        "swapram-replay measures the trace-replay engine and asserts it "
        "bit-identical to execution)",
    )
    snapshot.add_argument(
        "--plan",
        choices=sorted(PLANS),
        default="unified",
        help="memory placement plan (default: unified)",
    )
    snapshot.add_argument(
        "--mhz", type=float, default=24, help="CPU clock in MHz (default: 24)"
    )
    snapshot.add_argument(
        "--scale", type=int, default=1, help="benchmark input scale (default: 1)"
    )
    snapshot.add_argument(
        "--out",
        default=None,
        help="destination path (default: next free BENCH_<n>.json "
        "in the current directory)",
    )
    snapshot.add_argument(
        "--parallel-jobs",
        type=int,
        default=None,
        metavar="N",
        help="also time the first benchmark's ablation grid through the "
        "sweep engine serial vs N workers (the snapshot's "
        "parallel_sweep section)",
    )
    snapshot.add_argument(
        "--build-cache",
        default=None,
        metavar="DIR",
        help="persist compiled programs under DIR so warm re-runs "
        "perform zero compiles (same as REPRO_BUILD_CACHE)",
    )
    snapshot.add_argument(
        "--quiet", action="store_true", help="no per-run progress lines"
    )

    compare = commands.add_parser(
        "compare", help="gate a new snapshot against a baseline"
    )
    compare.add_argument("old", help="baseline snapshot (e.g. BENCH_1.json)")
    compare.add_argument("new", help="candidate snapshot")
    compare.add_argument(
        "--threshold",
        action="append",
        default=[],
        metavar="METRIC=FRACTION",
        help="per-metric relative threshold override "
        "(e.g. total_cycles=0.1); repeatable",
    )
    compare.add_argument(
        "--default-threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="apply one threshold to every gated guest metric",
    )
    compare.add_argument(
        "--host-threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="also gate host wall-clock metrics (off by default: host "
        "times are machine-dependent)",
    )
    compare.add_argument(
        "--all", action="store_true", help="print every delta, not just "
        "regressions",
    )

    validate = commands.add_parser(
        "validate", help="schema-check a snapshot file"
    )
    validate.add_argument("path", help="snapshot file to check")
    return parser


def _parse_thresholds(pairs, parser):
    thresholds = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        try:
            thresholds[name] = float(value)
        except ValueError:
            parser.error(f"--threshold expects METRIC=FRACTION, got {pair!r}")
    return thresholds


def main(argv=None, out=sys.stdout):
    parser = _parser()
    args = parser.parse_args(argv)

    if args.command == "snapshot":
        if args.build_cache is not None:
            from repro.toolchain import BUILD_CACHE

            BUILD_CACHE.attach_disk(args.build_cache)
        progress = None
        if not args.quiet:
            progress = lambda label: print(f"measuring {label} ...", file=out)
        snapshot = take_snapshot(
            benchmarks=args.benchmarks,
            systems=args.systems,
            plan_name=args.plan,
            frequency_mhz=args.mhz,
            scale=args.scale,
            parallel_jobs=args.parallel_jobs,
            progress=progress,
        )
        problems = validate_snapshot(snapshot)
        if problems:  # defensive: take_snapshot should always be valid
            print(f"internal error: invalid snapshot: {problems}", file=out)
            return 1
        path = write_snapshot(snapshot, path=args.out)
        measured = sum(1 for run in snapshot["runs"] if not run["dnf"])
        dnf = len(snapshot["runs"]) - measured
        print(
            f"wrote {path} ({measured} runs measured"
            + (f", {dnf} DNF" if dnf else "")
            + ")",
            file=out,
        )
        return 0

    if args.command == "compare":
        try:
            old = load_snapshot(args.old)
            new = load_snapshot(args.new)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=out)
            return 2
        report = compare_snapshots(
            old,
            new,
            thresholds=_parse_thresholds(args.threshold, parser),
            default_threshold=args.default_threshold,
            host_threshold=args.host_threshold,
        )
        print(report.render(all_rows=args.all), file=out)
        return 0 if report.ok else 1

    # validate
    try:
        load_snapshot(args.path)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=out)
        return 1
    print(f"{args.path}: valid snapshot", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
