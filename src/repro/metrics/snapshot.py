"""Benchmark snapshots: the ``BENCH_<n>.json`` perf trajectory.

A snapshot is one schema-versioned JSON document capturing how fast the
repo runs *right now*: for every (benchmark, system) point of the quick
matrix it records the guest-side quantities the paper's claims are made
of (cycles, stalls, FRAM/SRAM traffic, energy) and the host-side
quantities the ROADMAP's "fast as the hardware allows" goal is judged
by (per-phase wall-clock, simulated instructions per host second).
Snapshots at the repo root -- ``BENCH_1.json``, ``BENCH_2.json``, ... --
form the performance trajectory every perf PR is measured against;
:mod:`repro.metrics.compare` is the gate between any two of them.
"""

import json
import platform
import re
import time
from pathlib import Path

from repro.bench import QUICK_NAMES, get_benchmark
from repro.blockcache import build_blockcache
from repro.core import build_swapram
from repro.datacache.cache import DataCacheConfig
from repro.datacache.system import build_datacache
from repro.metrics.instrument import MetricsSession
from repro.metrics.registry import MetricsRegistry, PhaseTimer
from repro.toolchain import FitError, PLANS, build_baseline, compile_program

SCHEMA = "repro-bench-snapshot/1"

#: The trace-replay engine measured as a system of its own: the row's
#: guest metrics are asserted bit-identical to the executed swapram
#: run before it is recorded, so the snapshot job doubles as an
#: equivalence check; its host metrics track replay speed.
REPLAY_SYSTEM = "swapram-replay"

#: Systems measured by default. ``block`` is opt-in: the prior-work
#: comparison point matters for the paper artifacts, not for tracking
#: this repo's own hot paths. The two data-cache rows pin the
#: write-back win: ``datacache-wb`` (default back/alru configuration)
#: must beat ``datacache-wt`` (through/none) on write-heavy kernels
#: and lose nowhere -- the snapshot asserts the stats invariants on
#: both before recording them.
DATACACHE_WT = "datacache-wt"
DATACACHE_WB = "datacache-wb"
DEFAULT_SYSTEMS = (
    "baseline",
    "swapram",
    REPLAY_SYSTEM,
    DATACACHE_WT,
    DATACACHE_WB,
)

#: The ablation grid timed by ``measure_replay_grid``: every eviction
#: policy crossed with an uncapped, a mid, and a thrashing cache limit.
REPLAY_GRID_POLICIES = ("queue", "stack", "cost_aware")
REPLAY_GRID_LIMITS = (None, 0x180, 0xC0)

_GUEST_KEYS = (
    "instructions",
    "unstalled_cycles",
    "stall_cycles",
    "total_cycles",
    "fram_accesses",
    "sram_accesses",
    "code_accesses",
    "data_accesses",
    "runtime_us",
    "energy_nj",
)

def _build_datacache_wt(program, plan, frequency_mhz=24):
    return build_datacache(
        program,
        plan,
        config=DataCacheConfig(mode="through", cleaning="none"),
        frequency_mhz=frequency_mhz,
    )


def _build_datacache_wb(program, plan, frequency_mhz=24):
    return build_datacache(program, plan, frequency_mhz=frequency_mhz)


_BUILDERS = {
    "baseline": build_baseline,
    "swapram": build_swapram,
    "block": build_blockcache,
    DATACACHE_WT: _build_datacache_wt,
    DATACACHE_WB: _build_datacache_wb,
}


def snapshot_run(
    benchmark,
    system,
    plan_name="unified",
    frequency_mhz=24,
    scale=1,
    max_instructions=80_000_000,
):
    """Measure one (benchmark, system) point; returns its snapshot row.

    Phases are timed separately so compile-time and run-time host
    regressions are distinguishable: ``compile`` is mini-C -> assembly,
    ``build`` is instrument + assemble + link + load (the assembler runs
    inside the linker), ``run`` is the simulation itself.
    """
    if system == REPLAY_SYSTEM:
        row, _ = _snapshot_replay_run(
            benchmark,
            plan_name=plan_name,
            frequency_mhz=frequency_mhz,
            scale=scale,
            max_instructions=max_instructions,
        )
        return row
    program = get_benchmark(benchmark, scale=scale)
    timer = PhaseTimer()
    row = {
        "benchmark": benchmark,
        "system": system,
        "plan": plan_name,
        "dnf": False,
    }
    try:
        with timer.phase("compile"):
            compiled = compile_program(program.source)
        with timer.phase("build"):
            built = _BUILDERS[system](
                compiled, PLANS[plan_name], frequency_mhz=frequency_mhz
            )
    except FitError as error:
        row["dnf"] = True
        row["dnf_reason"] = str(error)
        row["host"] = {"phases": timer.as_dict()}
        return row

    # Attaching opens the "run" phase on the shared timer, so the span
    # covers the simulation only -- build time never pollutes
    # instructions/sec.
    session = MetricsSession.attach(built, timer=timer)
    result = built.run(max_instructions=max_instructions)
    session.finish(result)

    if result.debug_words != program.expected:
        raise AssertionError(
            f"{benchmark}/{system}: wrong output "
            f"{result.debug_words[:8]} != {program.expected[:8]}"
        )

    run_s = timer.seconds("run")
    row["guest"] = {key: result.as_dict()[key] for key in _GUEST_KEYS}
    row["host"] = {
        "run_s": run_s,
        "build_s": timer.seconds("compile") + timer.seconds("build"),
        "instructions_per_s": result.instructions / run_s if run_s else 0.0,
        "phases": timer.as_dict(),
    }
    stats = getattr(built, "stats", None)
    if stats is not None:
        if hasattr(stats, "invariant_problems"):
            problems = stats.invariant_problems(built.runtime.model.line_words)
            if problems:
                raise AssertionError(
                    f"{benchmark}/{system}: datacache exact-sum "
                    f"invariants violated: {'; '.join(problems)}"
                )
        row["stats"] = stats.as_dict()
    row["metrics"] = session.registry.as_dict()
    return row


def _snapshot_replay_run(
    benchmark,
    plan_name="unified",
    frequency_mhz=24,
    scale=1,
    max_instructions=80_000_000,
):
    """Measure the replay engine on one benchmark; returns (row, engine).

    Captures the swapram run through the real CPU (``capture`` phase),
    replays the captured configuration, and refuses to record the row
    unless replay is bit-identical to the execution it shadowed --
    result, statistics and raw counters alike.
    """
    from repro.replay import ReplayEngine, capture_source
    from repro.replay.reference import diff_outcome

    program = get_benchmark(benchmark, scale=scale)
    timer = PhaseTimer()
    row = {
        "benchmark": benchmark,
        "system": REPLAY_SYSTEM,
        "plan": plan_name,
        "dnf": False,
    }
    try:
        with timer.phase("capture"):
            document, target, result = capture_source(
                program.source,
                system="swapram",
                plan_name=plan_name,
                frequency_mhz=frequency_mhz,
                scale=scale,
                benchmark=benchmark,
                max_instructions=max_instructions,
            )
    except FitError as error:
        row["dnf"] = True
        row["dnf_reason"] = str(error)
        row["host"] = {"phases": timer.as_dict()}
        return row, None

    registry = MetricsRegistry()
    engine = ReplayEngine(document, metrics=registry)
    with timer.phase("run"):
        outcome = engine.replay()
    problems = diff_outcome(target, result, outcome)
    if problems:
        raise AssertionError(
            f"{benchmark}/{REPLAY_SYSTEM}: replay diverged from "
            f"execution: {problems[:5]}"
        )

    row["guest"] = {key: outcome.result.as_dict()[key] for key in _GUEST_KEYS}
    row["host"] = {
        "run_s": outcome.seconds,
        "build_s": engine.build_seconds + engine.compile_seconds,
        "capture_s": timer.seconds("capture"),
        "events_per_s": outcome.events_per_s,
        "instructions_per_s": (
            outcome.result.instructions / outcome.seconds
            if outcome.seconds
            else 0.0
        ),
        "phases": timer.as_dict(),
    }
    row["stats"] = outcome.stats.as_dict()
    row["metrics"] = registry.as_dict()
    return row, engine


def measure_replay_grid(
    benchmark,
    engine=None,
    plan_name="unified",
    frequency_mhz=24,
    scale=1,
    max_instructions=80_000_000,
    policies=REPLAY_GRID_POLICIES,
    cache_limits=REPLAY_GRID_LIMITS,
):
    """Time one ablation grid via replay vs full execution.

    Every cell is asserted bit-identical before the timing is trusted.
    Returns the snapshot's ``replay_grid`` section: replay wall clock
    (trace already captured -- the store amortises capture across
    sweeps), the one-time capture cost, the execution wall clock, and
    their ratio. This is the number the ISSUE's >= 5x target is judged
    by.
    """
    from repro.replay import ReplayEngine, capture_source
    from repro.replay.reference import diff_outcome, execute_reference

    program = get_benchmark(benchmark, scale=scale)
    capture_s = 0.0
    if engine is None:
        started = time.perf_counter()
        document, _, _ = capture_source(
            program.source,
            system="swapram",
            plan_name=plan_name,
            frequency_mhz=frequency_mhz,
            scale=scale,
            benchmark=benchmark,
            max_instructions=max_instructions,
        )
        capture_s = time.perf_counter() - started
        engine = ReplayEngine(document)

    cells = [(policy, limit) for policy in policies for limit in cache_limits]
    started = time.perf_counter()
    outcomes = [
        engine.replay(
            policy=policy, cache_limit=limit, frequency_mhz=frequency_mhz
        )
        for policy, limit in cells
    ]
    replay_s = time.perf_counter() - started

    started = time.perf_counter()
    for (policy, limit), outcome in zip(cells, outcomes):
        target, result = execute_reference(
            program.source,
            system="swapram",
            plan_name=plan_name,
            frequency_mhz=frequency_mhz,
            policy=policy,
            cache_limit=limit,
            max_instructions=max_instructions,
        )
        problems = diff_outcome(target, result, outcome)
        if problems:
            raise AssertionError(
                f"{benchmark} {policy}/{limit}: replay diverged from "
                f"execution: {problems[:5]}"
            )
    execute_s = time.perf_counter() - started

    return {
        "benchmark": benchmark,
        "plan": plan_name,
        "policies": list(policies),
        "cache_limits": list(cache_limits),
        "cells": len(cells),
        "replay_s": replay_s,
        "capture_s": capture_s,
        "execute_s": execute_s,
        "speedup": execute_s / replay_s if replay_s else 0.0,
        "bit_identical": True,
    }


def measure_parallel_sweep(
    benchmark,
    jobs=4,
    plan_name="unified",
    frequency_mhz=24,
    scale=1,
    policies=REPLAY_GRID_POLICIES,
    cache_limits=REPLAY_GRID_LIMITS,
):
    """Time one compare-execute replay campaign serial vs sharded.

    Captures the benchmark's trace once into a shared store, then runs
    the same policy × cache-limit campaign twice through the sweep
    engine -- ``jobs=1`` and ``jobs=N`` -- in separate roots, asserting
    the merged documents byte-identical before the timings are trusted.
    This is the snapshot's ``parallel_sweep`` section; ``cpu_count`` is
    recorded because the speedup is only meaningful with free cores
    (CI asserts >= 2x on multi-core runners and skips the assertion on
    single-CPU hosts).
    """
    import os
    import shutil
    import tempfile

    from repro.replay import capture_source
    from repro.replay.store import TraceStore
    from repro.sweep import replay_campaign, run_campaign

    program = get_benchmark(benchmark, scale=scale)
    root = tempfile.mkdtemp(prefix="parallel-sweep-")
    try:
        trace_dir = str(Path(root) / "traces")
        document, _, _ = capture_source(
            program.source,
            system="swapram",
            plan_name=plan_name,
            frequency_mhz=frequency_mhz,
            scale=scale,
            benchmark=benchmark,
        )
        TraceStore(trace_dir).save(document)
        config = replay_campaign(
            benchmark,
            policies=policies,
            cache_limits=cache_limits,
            plan=plan_name,
            frequency_mhz=frequency_mhz,
            scale=scale,
            compare_execute=True,
            trace_store=trace_dir,
        )
        serial = run_campaign(config, root=str(Path(root) / "serial"), jobs=1)
        parallel = run_campaign(
            config, root=str(Path(root) / "parallel"), jobs=jobs
        )
        if serial.failed or parallel.failed or not (
            serial.complete and parallel.complete
        ):
            raise AssertionError(
                f"{benchmark}: parallel sweep campaign did not complete clean"
            )
        identical = (
            Path(serial.merged_path).read_bytes()
            == Path(parallel.merged_path).read_bytes()
        )
        if not identical:
            raise AssertionError(
                f"{benchmark}: jobs={jobs} merged document differs from serial"
            )
        return {
            "benchmark": benchmark,
            "plan": plan_name,
            "cells": serial.total,
            "jobs": jobs,
            "cpu_count": os.cpu_count() or 1,
            "serial_s": serial.pool.wall_s,
            "parallel_s": parallel.pool.wall_s,
            "speedup": (
                serial.pool.wall_s / parallel.pool.wall_s
                if parallel.pool.wall_s
                else 0.0
            ),
            "utilization": parallel.pool.utilization,
            "bit_identical": identical,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def take_snapshot(
    benchmarks=QUICK_NAMES,
    systems=DEFAULT_SYSTEMS,
    plan_name="unified",
    frequency_mhz=24,
    scale=1,
    max_instructions=80_000_000,
    parallel_jobs=None,
    progress=None,
):
    """Run the benchmark × system matrix; returns the snapshot document.

    When the matrix includes ``swapram-replay`` the document also gets
    a ``replay_grid`` section: the first benchmark's full policy ×
    cache-limit ablation grid timed via replay (reusing that
    benchmark's captured trace) and via execution, each cell asserted
    bit-identical. With *parallel_jobs* set, a ``parallel_sweep``
    section times the same grid through the sweep engine serial vs
    sharded (see :func:`measure_parallel_sweep`).
    """
    runs = []
    grid = None
    for benchmark in benchmarks:
        for system in systems:
            if progress is not None:
                progress(f"{benchmark}/{system}")
            if system == REPLAY_SYSTEM:
                row, engine = _snapshot_replay_run(
                    benchmark,
                    plan_name=plan_name,
                    frequency_mhz=frequency_mhz,
                    scale=scale,
                    max_instructions=max_instructions,
                )
                runs.append(row)
                if grid is None and engine is not None:
                    if progress is not None:
                        progress(f"{benchmark}/replay-grid")
                    grid = measure_replay_grid(
                        benchmark,
                        engine=engine,
                        plan_name=plan_name,
                        frequency_mhz=frequency_mhz,
                        scale=scale,
                        max_instructions=max_instructions,
                    )
                continue
            runs.append(
                snapshot_run(
                    benchmark,
                    system,
                    plan_name=plan_name,
                    frequency_mhz=frequency_mhz,
                    scale=scale,
                    max_instructions=max_instructions,
                )
            )
    document = {
        "schema": SCHEMA,
        "suite": {
            "benchmarks": list(benchmarks),
            "systems": list(systems),
            "plan": plan_name,
            "frequency_mhz": frequency_mhz,
            "scale": scale,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "created_unix_s": time.time(),
        },
        "runs": runs,
    }
    if grid is not None:
        document["replay_grid"] = grid
    if parallel_jobs is not None:
        if progress is not None:
            progress(f"{benchmarks[0]}/parallel-sweep x{parallel_jobs}")
        document["parallel_sweep"] = measure_parallel_sweep(
            benchmarks[0],
            jobs=parallel_jobs,
            plan_name=plan_name,
            frequency_mhz=frequency_mhz,
            scale=scale,
        )
    return document


_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def next_snapshot_path(root="."):
    """First unused ``BENCH_<n>.json`` under *root* (1-based)."""
    root = Path(root)
    taken = {
        int(match.group(1))
        for path in root.glob("BENCH_*.json")
        if (match := _BENCH_NAME.match(path.name))
    }
    number = 1
    while number in taken:
        number += 1
    return root / f"BENCH_{number}.json"


def write_snapshot(snapshot, path=None, root="."):
    """Write *snapshot* to *path* (default: the next BENCH_<n>.json)."""
    path = Path(path) if path is not None else next_snapshot_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path):
    """Read and schema-check a snapshot file."""
    document = json.loads(Path(path).read_text())
    problems = validate_snapshot(document)
    if problems:
        raise ValueError(f"{path}: invalid snapshot: {problems}")
    return document


def validate_snapshot(document):
    """Structural check; returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["snapshot is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    suite = document.get("suite")
    if not isinstance(suite, dict):
        problems.append("missing suite section")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("missing or empty runs list")
        return problems
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        for key in ("benchmark", "system", "plan"):
            if key not in run:
                problems.append(f"{where}: missing {key!r}")
        if run.get("dnf"):
            continue
        guest = run.get("guest")
        if not isinstance(guest, dict):
            problems.append(f"{where}: missing guest section")
            continue
        for key in _GUEST_KEYS:
            if key not in guest:
                problems.append(f"{where}: guest missing {key!r}")
        host = run.get("host")
        if not isinstance(host, dict) or "run_s" not in host:
            problems.append(f"{where}: missing host timing")
        if isinstance(guest, dict) and "total_cycles" in guest:
            unstalled = guest.get("unstalled_cycles", 0)
            stalls = guest.get("stall_cycles", 0)
            if guest["total_cycles"] != unstalled + stalls:
                problems.append(
                    f"{where}: total_cycles != unstalled + stalls"
                )
    return problems
