"""Benchmark snapshots: the ``BENCH_<n>.json`` perf trajectory.

A snapshot is one schema-versioned JSON document capturing how fast the
repo runs *right now*: for every (benchmark, system) point of the quick
matrix it records the guest-side quantities the paper's claims are made
of (cycles, stalls, FRAM/SRAM traffic, energy) and the host-side
quantities the ROADMAP's "fast as the hardware allows" goal is judged
by (per-phase wall-clock, simulated instructions per host second).
Snapshots at the repo root -- ``BENCH_1.json``, ``BENCH_2.json``, ... --
form the performance trajectory every perf PR is measured against;
:mod:`repro.metrics.compare` is the gate between any two of them.
"""

import json
import platform
import re
import time
from pathlib import Path

from repro.bench import QUICK_NAMES, get_benchmark
from repro.blockcache import build_blockcache
from repro.core import build_swapram
from repro.metrics.instrument import MetricsSession
from repro.metrics.registry import PhaseTimer
from repro.toolchain import FitError, PLANS, build_baseline, compile_program

SCHEMA = "repro-bench-snapshot/1"

#: Systems measured by default. ``block`` is opt-in: the prior-work
#: comparison point matters for the paper artifacts, not for tracking
#: this repo's own hot paths.
DEFAULT_SYSTEMS = ("baseline", "swapram")

_GUEST_KEYS = (
    "instructions",
    "unstalled_cycles",
    "stall_cycles",
    "total_cycles",
    "fram_accesses",
    "sram_accesses",
    "code_accesses",
    "data_accesses",
    "runtime_us",
    "energy_nj",
)

_BUILDERS = {
    "baseline": build_baseline,
    "swapram": build_swapram,
    "block": build_blockcache,
}


def snapshot_run(
    benchmark,
    system,
    plan_name="unified",
    frequency_mhz=24,
    scale=1,
    max_instructions=80_000_000,
):
    """Measure one (benchmark, system) point; returns its snapshot row.

    Phases are timed separately so compile-time and run-time host
    regressions are distinguishable: ``compile`` is mini-C -> assembly,
    ``build`` is instrument + assemble + link + load (the assembler runs
    inside the linker), ``run`` is the simulation itself.
    """
    program = get_benchmark(benchmark, scale=scale)
    timer = PhaseTimer()
    row = {
        "benchmark": benchmark,
        "system": system,
        "plan": plan_name,
        "dnf": False,
    }
    try:
        with timer.phase("compile"):
            compiled = compile_program(program.source)
        with timer.phase("build"):
            built = _BUILDERS[system](
                compiled, PLANS[plan_name], frequency_mhz=frequency_mhz
            )
    except FitError as error:
        row["dnf"] = True
        row["dnf_reason"] = str(error)
        row["host"] = {"phases": timer.as_dict()}
        return row

    # Attaching opens the "run" phase on the shared timer, so the span
    # covers the simulation only -- build time never pollutes
    # instructions/sec.
    session = MetricsSession.attach(built, timer=timer)
    result = built.run(max_instructions=max_instructions)
    session.finish(result)

    if result.debug_words != program.expected:
        raise AssertionError(
            f"{benchmark}/{system}: wrong output "
            f"{result.debug_words[:8]} != {program.expected[:8]}"
        )

    run_s = timer.seconds("run")
    row["guest"] = {key: result.as_dict()[key] for key in _GUEST_KEYS}
    row["host"] = {
        "run_s": run_s,
        "build_s": timer.seconds("compile") + timer.seconds("build"),
        "instructions_per_s": result.instructions / run_s if run_s else 0.0,
        "phases": timer.as_dict(),
    }
    stats = getattr(built, "stats", None)
    if stats is not None:
        row["stats"] = stats.as_dict()
    row["metrics"] = session.registry.as_dict()
    return row


def take_snapshot(
    benchmarks=QUICK_NAMES,
    systems=DEFAULT_SYSTEMS,
    plan_name="unified",
    frequency_mhz=24,
    scale=1,
    max_instructions=80_000_000,
    progress=None,
):
    """Run the benchmark × system matrix; returns the snapshot document."""
    runs = []
    for benchmark in benchmarks:
        for system in systems:
            if progress is not None:
                progress(f"{benchmark}/{system}")
            runs.append(
                snapshot_run(
                    benchmark,
                    system,
                    plan_name=plan_name,
                    frequency_mhz=frequency_mhz,
                    scale=scale,
                    max_instructions=max_instructions,
                )
            )
    return {
        "schema": SCHEMA,
        "suite": {
            "benchmarks": list(benchmarks),
            "systems": list(systems),
            "plan": plan_name,
            "frequency_mhz": frequency_mhz,
            "scale": scale,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "created_unix_s": time.time(),
        },
        "runs": runs,
    }


_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def next_snapshot_path(root="."):
    """First unused ``BENCH_<n>.json`` under *root* (1-based)."""
    root = Path(root)
    taken = {
        int(match.group(1))
        for path in root.glob("BENCH_*.json")
        if (match := _BENCH_NAME.match(path.name))
    }
    number = 1
    while number in taken:
        number += 1
    return root / f"BENCH_{number}.json"


def write_snapshot(snapshot, path=None, root="."):
    """Write *snapshot* to *path* (default: the next BENCH_<n>.json)."""
    path = Path(path) if path is not None else next_snapshot_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path):
    """Read and schema-check a snapshot file."""
    document = json.loads(Path(path).read_text())
    problems = validate_snapshot(document)
    if problems:
        raise ValueError(f"{path}: invalid snapshot: {problems}")
    return document


def validate_snapshot(document):
    """Structural check; returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["snapshot is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    suite = document.get("suite")
    if not isinstance(suite, dict):
        problems.append("missing suite section")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("missing or empty runs list")
        return problems
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        for key in ("benchmark", "system", "plan"):
            if key not in run:
                problems.append(f"{where}: missing {key!r}")
        if run.get("dnf"):
            continue
        guest = run.get("guest")
        if not isinstance(guest, dict):
            problems.append(f"{where}: missing guest section")
            continue
        for key in _GUEST_KEYS:
            if key not in guest:
                problems.append(f"{where}: guest missing {key!r}")
        host = run.get("host")
        if not isinstance(host, dict) or "run_s" not in host:
            problems.append(f"{where}: missing host timing")
        if isinstance(guest, dict) and "total_cycles" in guest:
            unstalled = guest.get("unstalled_cycles", 0)
            stalls = guest.get("stall_cycles", 0)
            if guest["total_cycles"] != unstalled + stalls:
                problems.append(
                    f"{where}: total_cycles != unstalled + stalls"
                )
    return problems
