"""The metric primitives: counters, gauges, histograms, phase timers.

Everything here is plain host-side bookkeeping -- no simulated cycles,
no bus traffic. A :class:`MetricsRegistry` is a named bag of metrics
that serializes to plain data (``as_dict``) for the ``BENCH_*.json``
snapshots and the comparison gate.

The registry follows the same opt-in discipline as ``repro.obs``: the
cache runtimes carry a ``metrics`` attribute that is ``None`` by
default, and every hot-path use is guarded by ``is not None`` -- a
detached run executes exactly the seed code path (see
``benchmarks/test_simulator_speed.py`` for the guard).

:class:`PhaseTimer` is the one sanctioned way to measure host
wall-clock in this repo. ``repro.obs.session``, the experiments runner,
``python -m repro.experiments`` and the snapshot harness all route
their timing through it, so "how long did phase X take" always means
the same thing.
"""

import time


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def as_dict(self):
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def as_dict(self):
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of observed values (count/sum/min/max).

    Deliberately bucketless: the snapshot gate compares aggregate
    ratios, and keeping only four scalars keeps the attached-run cost
    to a few attribute updates per observation.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def as_dict(self):
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class PhaseTimer:
    """Named, accumulating wall-clock phases.

    Use as a context manager for scoped phases::

        timer = PhaseTimer()
        with timer.phase("compile"):
            program = compile_program(source)

    or ``start``/``stop`` when the span crosses call boundaries (the
    way :class:`~repro.obs.session.TraceSession` times attach→finish).
    Re-entering a phase name accumulates into the same bucket, so a
    loop timed phase-by-phase sums naturally. *clock* is injectable for
    deterministic tests.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._running = {}  # name -> start timestamp
        self._elapsed = {}  # name -> accumulated seconds
        self._counts = {}  # name -> completed spans

    def start(self, name):
        if name in self._running:
            raise RuntimeError(f"phase {name!r} is already running")
        self._running[name] = self._clock()
        return self

    def stop(self, name):
        """Close the named phase; returns the span's seconds."""
        started = self._running.pop(name, None)
        if started is None:
            raise RuntimeError(f"phase {name!r} is not running")
        span = self._clock() - started
        self._elapsed[name] = self._elapsed.get(name, 0.0) + span
        self._counts[name] = self._counts.get(name, 0) + 1
        return span

    def phase(self, name):
        return _PhaseSpan(self, name)

    def running(self, name):
        return name in self._running

    def seconds(self, name):
        """Accumulated seconds for *name* (0.0 if never timed)."""
        return self._elapsed.get(name, 0.0)

    def count(self, name):
        return self._counts.get(name, 0)

    @property
    def total_seconds(self):
        return sum(self._elapsed.values())

    def as_dict(self):
        """``{name: {"seconds": s, "count": n}}`` for completed phases."""
        return {
            name: {"seconds": seconds, "count": self._counts.get(name, 0)}
            for name, seconds in self._elapsed.items()
        }


class _PhaseSpan:
    """Context manager for one ``PhaseTimer.phase(name)`` span."""

    __slots__ = ("timer", "name")

    def __init__(self, timer, name):
        self.timer = timer
        self.name = name

    def __enter__(self):
        self.timer.start(self.name)
        return self.timer

    def __exit__(self, *exc):
        self.timer.stop(self.name)
        return False


class MetricsRegistry:
    """A named collection of metrics, created on first use.

    ``registry.counter("swapram.misses")`` returns the same
    :class:`Counter` every call, so instrumentation sites never need to
    pre-declare what they record.
    """

    def __init__(self):
        self._metrics = {}

    def _get(self, name, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(name)
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} is {type(metric).__name__}, "
                f"not {factory.__name__}"
            )
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def __contains__(self, name):
        return name in self._metrics

    def __getitem__(self, name):
        return self._metrics[name]

    def __iter__(self):
        return iter(sorted(self._metrics))

    def __len__(self):
        return len(self._metrics)

    def as_dict(self):
        """Plain-data view, sorted by metric name."""
        return {name: self._metrics[name].as_dict() for name in self}
