"""Text parser for MSP430 assembly.

Accepts the gcc-flavoured dialect the rest of the toolchain emits::

    .section .data
    counter: .word 0
    .section .text
    .func main
    main:
        MOV  #0, R12
    loop:
        ADD  #1, R12
        CMP  #10, R12
        JNE  loop
        CALL #helper
        RET
    .endfunc

Comments start with ``;`` or ``//``. Emulated mnemonics are expanded to
core instructions during parsing, so downstream passes only ever see the
27 core operations.
"""

import re

from repro.asm.ast import BSS, DATA, RODATA, TEXT, DataItem, Label, Program
from repro.isa.instructions import (
    EMULATED_MNEMONICS,
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    JUMP_CONDITIONS,
    Instruction,
    expand_emulated,
)
from repro.isa.operands import (
    Sym,
    absolute,
    autoinc,
    imm,
    indexed,
    indirect,
    reg,
    symbolic,
)
from repro.isa.registers import is_register_name, register_number


class AsmSyntaxError(ValueError):
    """Raised with file/line context when the source does not parse."""

    def __init__(self, message, line_number=None, line=None):
        location = f"line {line_number}: " if line_number else ""
        detail = f" in {line!r}" if line else ""
        super().__init__(f"{location}{message}{detail}")
        self.line_number = line_number


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_SECTION_ALIASES = {
    ".text": TEXT,
    ".rodata": RODATA,
    ".data": DATA,
    ".bss": BSS,
    "text": TEXT,
    "rodata": RODATA,
    "data": DATA,
    "bss": BSS,
}


def parse_expression(text):
    """Parse an integer / symbol / symbol±offset expression.

    Returns an int or a :class:`Sym`. Supports decimal, ``0x`` hex,
    ``'c'`` character literals and negative values.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty expression")
    if len(text) == 3 and text[0] == text[2] == "'":
        return ord(text[1])
    try:
        return int(text, 0)
    except ValueError:
        pass
    match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*(?:0[xX][0-9a-fA-F]+|\d+))?$", text)
    if not match:
        raise ValueError(f"bad expression: {text!r}")
    name, offset = match.groups()
    addend = int(offset.replace(" ", ""), 0) if offset else 0
    return Sym(name, addend)


def parse_operand(text):
    """Parse a single operand string into an :class:`Operand`."""
    text = text.strip()
    if not text:
        raise ValueError("empty operand")
    if text.startswith("#"):
        return imm(parse_expression(text[1:]))
    if text.startswith("&"):
        return absolute(parse_expression(text[1:]))
    if text.startswith("@"):
        body = text[1:].strip()
        if body.endswith("+"):
            return autoinc(register_number(body[:-1]))
        return indirect(register_number(body))
    match = re.match(r"^(.*)\(\s*([A-Za-z][\w]*)\s*\)$", text)
    if match:
        displacement, register = match.groups()
        return indexed(parse_expression(displacement), register_number(register))
    if is_register_name(text):
        return reg(register_number(text))
    return symbolic(parse_expression(text))


def _split_operands(text):
    """Split an operand field on top-level commas."""
    parts = []
    depth = 0
    current = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def parse_instruction(text):
    """Parse one instruction line (mnemonic + operands) to an Instruction."""
    parts = text.split(None, 1)
    mnemonic = parts[0].upper()
    byte = False
    if mnemonic.endswith(".B"):
        mnemonic = mnemonic[:-2]
        byte = True
    elif mnemonic.endswith(".W"):
        mnemonic = mnemonic[:-2]
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(operand_text)

    if mnemonic in JUMP_CONDITIONS:
        if len(operands) != 1:
            raise ValueError(f"{mnemonic} needs one target")
        return Instruction(mnemonic, target=parse_expression(operands[0]))
    if mnemonic in EMULATED_MNEMONICS:
        operand = parse_operand(operands[0]) if operands else None
        return expand_emulated(mnemonic, operand, byte=byte)
    if mnemonic == "RETI":
        return Instruction("RETI")
    if mnemonic in FORMAT_II_OPCODES:
        if len(operands) != 1:
            raise ValueError(f"{mnemonic} needs one operand")
        return Instruction(mnemonic, src=parse_operand(operands[0]), byte=byte)
    if mnemonic in FORMAT_I_OPCODES:
        if len(operands) != 2:
            raise ValueError(f"{mnemonic} needs two operands")
        return Instruction(
            mnemonic,
            src=parse_operand(operands[0]),
            dst=parse_operand(operands[1]),
            byte=byte,
        )
    raise ValueError(f"unknown mnemonic: {mnemonic}")


def _parse_data_directive(directive, argument):
    """Parse a ``.word``/``.byte``/``.space``/``.ascii(z)`` directive."""
    if directive in (".word", ".byte"):
        values = [parse_expression(part) for part in _split_operands(argument)]
        return DataItem(directive[1:], values)
    if directive == ".space":
        return DataItem("space", [int(argument.strip(), 0)])
    if directive in (".ascii", ".asciz", ".string"):
        text = argument.strip()
        if not (text.startswith('"') and text.endswith('"')):
            raise ValueError("string literal expected")
        raw = text[1:-1].encode().decode("unicode_escape")
        values = [ord(char) & 0xFF for char in raw]
        if directive in (".asciz", ".string"):
            values.append(0)
        return DataItem("byte", values)
    raise ValueError(f"unknown directive: {directive}")


def _strip_comment(line):
    for marker in (";", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def parse_asm(source, entry="main"):
    """Parse assembly *source* text into a :class:`Program`.

    Functions are delimited by ``.func name`` / ``.endfunc``; a label in
    ``.text`` outside any function also opens a function of that name
    (closed at the next function label), which keeps simple hand-written
    listings terse.
    """
    program = Program(entry=entry)
    section = TEXT
    current_function = None
    explicit_function = False
    pending_data_label = None

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        try:
            # Peel a leading label.
            match = _LABEL_RE.match(line)
            label_name = None
            if match:
                label_name, line = match.group(1), match.group(2).strip()

            if label_name is not None:
                if section == TEXT:
                    if (
                        current_function is not None
                        and label_name == current_function.name
                        and not current_function.items
                    ):
                        pass  # redundant `name:` right after `.func name`
                    elif current_function is None or (
                        not explicit_function and _looks_like_function(label_name)
                    ):
                        current_function = program.add_function(label_name)
                        explicit_function = False
                    else:
                        current_function.emit(Label(label_name))
                else:
                    pending_data_label = label_name
            if not line:
                continue

            if line.startswith("."):
                parts = line.split(None, 1)
                directive = parts[0].lower()
                argument = parts[1] if len(parts) > 1 else ""
                if directive == ".section":
                    name = argument.strip()
                    if name not in _SECTION_ALIASES:
                        raise ValueError(f"unknown section: {name}")
                    section = _SECTION_ALIASES[name]
                    if section != TEXT:
                        current_function = None
                        explicit_function = False
                elif directive == ".func":
                    current_function = program.add_function(argument.strip())
                    explicit_function = True
                elif directive == ".endfunc":
                    current_function = None
                    explicit_function = False
                elif directive in (".global", ".globl", ".align", ".p2align"):
                    pass  # accepted and ignored; layout handles alignment
                elif directive == ".entry":
                    program.entry = argument.strip()
                else:
                    item = _parse_data_directive(directive, argument)
                    if section == TEXT:
                        raise ValueError("data directive inside .text")
                    if pending_data_label is not None:
                        program.sections[section].append(Label(pending_data_label))
                        pending_data_label = None
                    program.sections[section].append(item)
                continue

            # Instruction line.
            if section != TEXT:
                raise ValueError("instruction outside .text")
            if current_function is None:
                raise ValueError("instruction outside any function")
            instruction = parse_instruction(line)
            instruction.validate()
            current_function.emit(instruction)
        except AsmSyntaxError:
            raise
        except Exception as error:  # noqa: BLE001 - re-raised with context
            raise AsmSyntaxError(str(error), line_number, raw_line.strip()) from error

    # Flush a trailing data label with no item (points at section end).
    if pending_data_label is not None:
        program.sections[section].append(Label(pending_data_label))
    return program


def _looks_like_function(name):
    """Heuristic: bare ``.text`` labels not starting with '.' open functions."""
    return not name.startswith(".")
