"""Two-pass assembler: :class:`Program` -> loadable :class:`Image`.

Pass one lays out every function, label and data item at concrete byte
addresses (instruction lengths are deterministic before symbol
resolution); pass two encodes instructions against the completed symbol
table. The resulting :class:`Image` knows each function's final address
and size -- exactly the information SwapRAM's second compile stage needs
to build its metadata tables (paper §4).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.asm.ast import DATA_SECTIONS, DataItem, Label, Program
from repro.isa.encoding import EncodingError, encode_instruction, instruction_length
from repro.isa.instructions import Instruction
from repro.isa.operands import resolve_value


class AssemblyError(ValueError):
    """Raised for duplicate/undefined symbols, range or overlap errors."""


class SectionLayout:
    """Base byte address for each section (extra sections allowed).

    The linker (``repro.toolchain``) computes layouts from a memory
    configuration; tests may hand-build them. Extra keyword arguments
    define bases for custom sections (e.g. SwapRAM's metadata tables).
    """

    def __init__(self, text, rodata=None, data=None, bss=None, **extra):
        self.bases = {"text": text, "rodata": rodata, "data": data, "bss": bss}
        self.bases.update(extra)

    def base(self, section):
        value = self.bases.get(section)
        if value is None:
            raise AssemblyError(f"no base address for section {section!r}")
        return value


@dataclass
class FunctionInfo:
    """Where a function landed: ``[address, address + size)``."""

    name: str
    address: int
    size: int
    blacklisted: bool = False
    is_library: bool = False

    @property
    def end(self):
        return self.address + self.size


@dataclass
class Image:
    """An assembled program: bytes at addresses plus symbol metadata."""

    symbols: Dict[str, int]
    functions: Dict[str, FunctionInfo]
    chunks: List[Tuple[int, bytes]]
    section_extents: Dict[str, Tuple[int, int]]
    entry: int
    program: Program = field(repr=False, default=None)

    def load_into(self, memory):
        """Write all loadable chunks into *memory* (anything with write_bytes)."""
        for address, data in self.chunks:
            memory.write_bytes(address, data)

    def function_at(self, address):
        """Return the FunctionInfo containing byte *address*, or None."""
        for info in self.functions.values():
            if info.address <= address < info.end:
                return info
        return None

    def total_code_size(self):
        """Total bytes of text (application + any generated stubs)."""
        base, size = self.section_extents["text"]
        return size

    def section_size(self, section):
        return self.section_extents.get(section, (0, 0))[1]


def _align(value, alignment=2):
    return (value + alignment - 1) & ~(alignment - 1)


def _layout_text(program, base, symbols, functions):
    """Assign addresses to every function, label and instruction."""
    cursor = base
    instruction_addresses = {}
    for function in program.functions:
        cursor = _align(cursor)
        start = cursor
        _define(symbols, function.name, cursor)
        for index, item in enumerate(function.items):
            if isinstance(item, Label):
                _define(symbols, item.name, cursor)
            elif isinstance(item, Instruction):
                instruction_addresses[(function.name, index)] = cursor
                cursor += instruction_length(item)
        functions[function.name] = FunctionInfo(
            function.name,
            start,
            cursor - start,
            blacklisted=function.blacklisted,
            is_library=function.is_library,
        )
    return cursor, instruction_addresses


def _layout_data(items, base, symbols):
    """Assign addresses to data-section labels and items."""
    cursor = base
    placed = []
    for item in items:
        if isinstance(item, Label):
            if any(
                isinstance(peek, DataItem) and peek.kind == "word"
                for peek in _next_items(items, item)
            ):
                cursor = _align(cursor)
            _define(symbols, item.name, cursor)
        elif isinstance(item, DataItem):
            if item.kind == "word":
                cursor = _align(cursor)
            placed.append((cursor, item))
            cursor += item.size()
    return cursor, placed


def _next_items(items, label):
    """The single item following *label*, if any (for alignment lookahead)."""
    index = items.index(label)
    return items[index + 1 : index + 2]


def _define(symbols, name, address):
    if name in symbols:
        raise AssemblyError(f"duplicate symbol: {name}")
    symbols[name] = address & 0xFFFF


def _encode_data(placed, symbols):
    """Encode placed data items into (address, bytes) chunks."""
    chunks = []
    for address, item in placed:
        if item.kind == "space":
            chunks.append((address, bytes(item.size())))
            continue
        blob = bytearray()
        for value in item.values:
            resolved = resolve_value(value, symbols)
            if item.kind == "word":
                blob += resolved.to_bytes(2, "little")
            else:
                blob.append(resolved & 0xFF)
        chunks.append((address, bytes(blob)))
    return chunks


def assemble(program, layout, extra_symbols=None):
    """Assemble *program* with section bases from *layout*.

    *extra_symbols* lets the toolchain inject absolute addresses (I/O
    ports, runtime entry points) referenced by name from the assembly.
    """
    symbols = dict(extra_symbols or {})
    functions = {}
    section_extents = {}

    text_base = layout.base("text")
    text_end, instruction_addresses = _layout_text(
        program, text_base, symbols, functions
    )
    section_extents["text"] = (text_base, text_end - text_base)

    placed_data = {}
    data_section_names = list(DATA_SECTIONS) + sorted(
        name for name in program.sections if name not in DATA_SECTIONS
    )
    for section in data_section_names:
        items = program.sections.get(section) or []
        if not items:
            section_extents[section] = (0, 0)
            continue
        base = layout.base(section)
        end, placed = _layout_data(items, base, symbols)
        placed_data[section] = placed
        section_extents[section] = (base, end - base)

    _check_overlaps(section_extents)

    # Pass two: encode text.
    text_blob = bytearray(text_end - text_base)
    for function in program.functions:
        for index, item in enumerate(function.items):
            if not isinstance(item, Instruction):
                continue
            address = instruction_addresses[(function.name, index)]
            try:
                words = encode_instruction(item, address, symbols)
            except (EncodingError, KeyError) as error:
                raise AssemblyError(
                    f"in {function.name} at {address:#06x}: {item}: {error}"
                ) from error
            offset = address - text_base
            for word in words:
                text_blob[offset : offset + 2] = word.to_bytes(2, "little")
                offset += 2

    chunks = [(text_base, bytes(text_blob))] if text_blob else []
    for placed in placed_data.values():
        # BSS included: emitting its zeros makes reloads deterministic.
        chunks.extend(_encode_data(placed, symbols))

    if program.entry not in symbols:
        raise AssemblyError(f"entry point {program.entry!r} is undefined")

    return Image(
        symbols=symbols,
        functions=functions,
        chunks=chunks,
        section_extents=section_extents,
        entry=symbols[program.entry],
        program=program,
    )


def _check_overlaps(extents):
    """Fail when any two non-empty sections overlap."""
    spans = [
        (base, base + size, name)
        for name, (base, size) in extents.items()
        if size > 0
    ]
    spans.sort()
    for (start_a, end_a, name_a), (start_b, end_b, name_b) in zip(spans, spans[1:]):
        if start_b < end_a:
            raise AssemblyError(
                f"sections overlap: {name_a} [{start_a:#06x},{end_a:#06x}) and "
                f"{name_b} [{start_b:#06x},{end_b:#06x})"
            )
