"""MSP430 assembly layer: AST, parser, two-pass assembler, disassembler.

This is the substrate the paper's toolchain lives in: SwapRAM is an
*assembly-level* transformation, so programs flow through this package
as structured assembly (functions of labeled instructions plus data
items), get instrumented by ``repro.core`` / ``repro.blockcache``, and
are finally assembled into a loadable memory image.
"""

from repro.asm.ast import (
    DataItem,
    Function,
    Label,
    Program,
    SourceComment,
    function_items,
)
from repro.asm.parser import AsmSyntaxError, parse_asm, parse_operand
from repro.asm.assembler import (
    AssemblyError,
    Image,
    SectionLayout,
    assemble,
)
from repro.asm.disasm import disassemble_range, format_instruction

__all__ = [
    "DataItem",
    "Function",
    "Label",
    "Program",
    "SourceComment",
    "function_items",
    "AsmSyntaxError",
    "parse_asm",
    "parse_operand",
    "AssemblyError",
    "Image",
    "SectionLayout",
    "assemble",
    "disassemble_range",
    "format_instruction",
]
