"""Disassembler: memory bytes back to readable MSP430 assembly.

Used three ways in the reproduction:

* round-trip property tests against the assembler/encoder;
* the *library instrumentation* workflow (paper §4): recover
  instructions and function boundaries from "precompiled" images so
  library code can join SwapRAM's caching candidates;
* debugging listings of instrumented/self-modified images.
"""

from repro.isa.encoding import EncodingError, decode_instruction


def format_instruction(instruction):
    """Render an instruction in the same dialect the parser accepts."""
    return str(instruction)


def disassemble_range(read_word, start, end, symbols=None):
    """Decode ``[start, end)`` into ``(address, instruction, length)`` rows.

    *read_word* maps a byte address to the 16-bit word stored there.
    Decoding stops early (with a synthetic row) at an illegal opcode --
    data interleaved with code shows up that way.
    """
    rows = []
    address = start
    while address < end:
        try:
            instruction, length = decode_instruction(read_word, address)
        except EncodingError:
            rows.append((address, None, 2))
            address += 2
            continue
        rows.append((address, instruction, length))
        address += length
    return rows


def listing(read_word, start, end, symbols=None):
    """Return a printable listing of ``[start, end)``.

    When *symbols* (name -> address) is given, labels are interleaved.
    """
    by_address = {}
    for name, value in (symbols or {}).items():
        by_address.setdefault(value, []).append(name)
    lines = []
    for address, instruction, _length in disassemble_range(read_word, start, end):
        for name in sorted(by_address.get(address, [])):
            lines.append(f"{name}:")
        if instruction is None:
            lines.append(f"    {address:#06x}: .word {read_word(address):#06x}")
        else:
            lines.append(f"    {address:#06x}: {format_instruction(instruction)}")
    return "\n".join(lines)
