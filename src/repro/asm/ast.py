"""Structured assembly AST.

A :class:`Program` holds code as a list of :class:`Function` objects --
the unit SwapRAM caches at -- plus data items grouped into sections
(``rodata``, ``data``, ``bss``). Inside a function, items are a flat
sequence of :class:`Label`, :class:`~repro.isa.Instruction` and
:class:`SourceComment` entries; data sections hold :class:`Label` and
:class:`DataItem` entries.

Keeping functions structurally separate (rather than inferring
boundaries from labels) is what lets the instrumentation passes measure
function sizes, rewrite call sites, and relocate code safely.
"""

import copy
from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.instructions import Instruction

#: Section names used throughout the toolchain.
TEXT = "text"
RODATA = "rodata"
DATA = "data"
BSS = "bss"

DATA_SECTIONS = (RODATA, DATA, BSS)


@dataclass
class Label:
    """A named location. Label names are program-global."""

    name: str

    def __str__(self):
        return f"{self.name}:"


@dataclass
class SourceComment:
    """A comment carried through transformations for readable listings."""

    text: str

    def __str__(self):
        return f"; {self.text}"


@dataclass
class DataItem:
    """A data directive: ``kind`` is ``word``, ``byte`` or ``space``.

    * ``word`` / ``byte``: ``values`` is a list of ints or ``Sym``.
    * ``space``: ``values`` is ``[n_bytes]``.
    """

    kind: str
    values: list

    def size(self):
        """Encoded size in bytes."""
        if self.kind == "word":
            return 2 * len(self.values)
        if self.kind == "byte":
            return len(self.values)
        if self.kind == "space":
            return int(self.values[0])
        raise ValueError(f"unknown data kind: {self.kind}")

    def __str__(self):
        if self.kind == "space":
            return f".space {self.values[0]}"
        rendered = ", ".join(str(value) for value in self.values)
        return f".{self.kind} {rendered}"


@dataclass
class Function:
    """A contiguous, relocatable unit of code.

    ``blacklisted`` marks functions the SwapRAM user excluded from
    caching (paper §3.1); ``is_library`` tags code recovered from
    precompiled libraries via disassembly (paper §4, Library
    Instrumentation) -- behaviourally identical, tracked for reporting.
    """

    name: str
    items: List[object] = field(default_factory=list)
    blacklisted: bool = False
    is_library: bool = False

    def instructions(self):
        """Iterate the function's instructions in order."""
        return [item for item in self.items if isinstance(item, Instruction)]

    def labels(self):
        """Iterate the function's labels in order."""
        return [item for item in self.items if isinstance(item, Label)]

    def emit(self, item):
        """Append an item (instruction/label/comment)."""
        self.items.append(item)
        return item

    def __str__(self):
        lines = [f"{self.name}:"]
        for item in self.items:
            if isinstance(item, Label):
                lines.append(str(item))
            else:
                lines.append(f"    {item}")
        return "\n".join(lines)


@dataclass
class Program:
    """A complete assembly program prior to assembly.

    ``entry`` names the function control starts in (the generated crt0
    sets up the stack then transfers there). ``sections`` maps each data
    section name to its item list.
    """

    functions: List[Function] = field(default_factory=list)
    sections: dict = None
    entry: str = "main"

    def __post_init__(self):
        if self.sections is None:
            self.sections = {name: [] for name in DATA_SECTIONS}
        for name in DATA_SECTIONS:
            self.sections.setdefault(name, [])

    # -- lookups -------------------------------------------------------------

    def function(self, name):
        """Return the function called *name* or raise ``KeyError``."""
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name):
        return any(function.name == name for function in self.functions)

    def function_names(self):
        return [function.name for function in self.functions]

    # -- construction ----------------------------------------------------------

    def add_function(self, name, blacklisted=False, is_library=False):
        """Create, register and return a new empty function."""
        if self.has_function(name):
            raise ValueError(f"duplicate function: {name}")
        function = Function(name, blacklisted=blacklisted, is_library=is_library)
        self.functions.append(function)
        return function

    def add_data(self, section, label, item):
        """Append a labeled :class:`DataItem` to *section*; returns label name."""
        if label is not None:
            self.sections[section].append(Label(label))
        self.sections[section].append(item)
        return label

    def clone(self):
        """Deep-copy the program (transformation passes never mutate input)."""
        return copy.deepcopy(self)

    def __str__(self):
        chunks = []
        for section in DATA_SECTIONS:
            items = self.sections.get(section) or []
            if items:
                chunks.append(f".section .{section}")
                for item in items:
                    if isinstance(item, Label):
                        chunks.append(str(item))
                    else:
                        chunks.append(f"    {item}")
        chunks.append(".section .text")
        for function in self.functions:
            chunks.append(f".func {function.name}")
            chunks.append(str(function))
            chunks.append(".endfunc")
        return "\n".join(chunks)


def function_items(function):
    """Yield ``(index, item)`` pairs for in-place rewriting passes."""
    return list(enumerate(function.items))


def defined_labels(program: Program) -> set:
    """All label names defined anywhere in *program* (functions + data)."""
    names = set()
    for function in program.functions:
        names.add(function.name)
        for label in function.labels():
            names.add(label.name)
    for items in program.sections.values():
        for item in items:
            if isinstance(item, Label):
                names.add(item.name)
    return names


def find_label_index(function: Function, name: str) -> Optional[int]:
    """Index of label *name* inside *function*, or None."""
    for index, item in enumerate(function.items):
        if isinstance(item, Label) and item.name == name:
            return index
    return None
