"""The ``repro trace`` subcommand: one fully-observed benchmark run.

::

    python -m repro trace crc --system swapram
    python -m repro trace rc4 --system swapram --policy stack --cache-limit 384
    python -m repro trace program.c --system block --plan standard
    python -m repro trace crc --accesses 40      # tail of the access stream
    python -m repro trace export --campaign difftest-1a2b3c4d   # campaign trace

Builds the chosen system, attaches a :class:`~repro.obs.session.TraceSession`,
runs the program, prints the per-function attribution table and the
call tree, and writes a Perfetto-loadable ``trace_event`` JSON (open it
at https://ui.perfetto.dev) plus a machine-readable ``.report.json``
sidecar. The positional argument is a benchmark name from
:mod:`repro.bench.suite` or a mini-C source file path.
"""

import argparse
import sys
from pathlib import Path

from repro.bench.suite import BENCHMARK_NAMES, get_benchmark
from repro.blockcache import build_blockcache
from repro.core import ThrashGuard, build_swapram
from repro.core.policy import POLICIES
from repro.machine.tracelog import TraceLog
from repro.obs.report import (
    call_tree_text,
    occupancy_table,
    profile_table,
    write_session_artifacts,
)
from repro.obs.session import TraceSession
from repro.toolchain import FitError, PLANS, build_baseline


def _parser():
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Record a cycle-attributed trace of one run "
        "(Perfetto JSON + per-function profile).",
    )
    parser.add_argument(
        "benchmark",
        help=f"benchmark name ({', '.join(BENCHMARK_NAMES)}) "
        "or a mini-C source file",
    )
    parser.add_argument(
        "--system",
        choices=("baseline", "swapram", "block"),
        default="swapram",
        help="execution system (default: swapram)",
    )
    parser.add_argument(
        "--plan",
        choices=sorted(PLANS),
        default="unified",
        help="memory placement plan (default: unified)",
    )
    parser.add_argument(
        "--policy",
        choices=sorted(POLICIES),
        default="queue",
        help="SwapRAM replacement policy (default: queue)",
    )
    parser.add_argument(
        "--cache-limit", type=int, default=None, help="cap the SRAM cache (bytes)"
    )
    parser.add_argument(
        "--thrash-guard",
        action="store_true",
        help="enable the freeze-on-thrash extension (swapram only)",
    )
    parser.add_argument(
        "--mhz", type=float, default=24, help="CPU clock in MHz (default: 24)"
    )
    parser.add_argument(
        "--scale", type=int, default=1, help="benchmark input scale (default: 1)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="trace destination "
        "(default: results/traces/<name>-<system>.trace.json)",
    )
    parser.add_argument(
        "--top", type=int, default=None, help="limit the profile table to N rows"
    )
    parser.add_argument(
        "--accesses",
        type=int,
        nargs="?",
        const=32,
        default=None,
        metavar="N",
        help="also log the raw memory access stream and print its last "
        "N entries (default N: 32)",
    )
    parser.add_argument(
        "--events-limit",
        type=int,
        default=None,
        help="cap recorded timeline events (excess is counted, not kept)",
    )
    parser.add_argument(
        "--max-instructions",
        type=int,
        default=50_000_000,
        help="runaway guard (default: 5e7)",
    )
    return parser


def _resolve_source(args, parser):
    """The positional is a registry name or a mini-C file path."""
    name = args.benchmark
    if name in BENCHMARK_NAMES:
        bench = get_benchmark(name, scale=args.scale)
        return bench.name, bench.source, bench.expected
    path = Path(name)
    if path.exists():
        return path.stem, path.read_text(), None
    parser.error(
        f"{name!r} is neither a benchmark ({', '.join(BENCHMARK_NAMES)}) "
        "nor an existing file"
    )


def _build(args, source):
    """Build the requested system; returns (target, board)."""
    plan = PLANS[args.plan]
    if args.system == "baseline":
        board = build_baseline(source, plan, frequency_mhz=args.mhz)
        return board, board
    if args.system == "swapram":
        system = build_swapram(
            source,
            plan,
            frequency_mhz=args.mhz,
            policy_class=POLICIES[args.policy],
            cache_limit=args.cache_limit,
            thrash_guard=ThrashGuard() if args.thrash_guard else None,
        )
        return system, system.board
    system = build_blockcache(
        source, plan, frequency_mhz=args.mhz, cache_limit=args.cache_limit
    )
    return system, system.board


def main(argv=None, out=sys.stdout):
    arguments = sys.argv[1:] if argv is None else list(argv)
    if arguments and arguments[0] == "export":
        # `repro trace export` renders a whole campaign's orchestration
        # plane (docs/tracing.md); everything else traces one guest run.
        from repro.tracing.cli import export_main

        return export_main(arguments[1:], out=out)
    parser = _parser()
    args = parser.parse_args(arguments)
    label, source, expected = _resolve_source(args, parser)

    try:
        target, board = _build(args, source)
    except FitError as error:
        print(f"DNF: {error}", file=out)
        return 2

    session = TraceSession.attach(target, events_limit=args.events_limit)
    accesses = None
    if args.accesses is not None:
        # Satellite access-stream logging rides on the same run: the
        # TraceLog wraps the collector's bus wrappers, so it must be
        # detached first (reverse attach order).
        accesses = TraceLog(board.bus, capacity=max(args.accesses, 1)).attach()
    try:
        result = target.run(max_instructions=args.max_instructions)
    finally:
        if accesses is not None:
            accesses.detach()
        session.finish()
    session.result = result

    print(profile_table(session, top=args.top), file=out)
    tree = call_tree_text(session)
    if tree:
        print(file=out)
        print("Call tree (inclusive/exclusive cycles)", file=out)
        print(tree, file=out)
    if session.occupancy():
        print(file=out)
        print(occupancy_table(session), file=out)
    if accesses is not None:
        print(file=out)
        print(f"Last {min(args.accesses, len(accesses.events))} memory "
              f"accesses (of {accesses.sequence}):", file=out)
        print(accesses.dump(limit=args.accesses), file=out)

    out_path = args.out or (
        Path("results/traces") / f"{label}-{args.system}.trace.json"
    )
    trace_path, report_path = write_session_artifacts(
        session,
        out_path,
        label=label,
        extra_metadata={
            "benchmark": label,
            "system": args.system,
            "plan": args.plan,
        },
    )
    print(file=out)
    print(f"trace  : {trace_path}", file=out)
    print(f"report : {report_path}", file=out)

    if expected is not None and result.debug_words != expected:
        print(
            f"output MISMATCH: {result.debug_words[:8]} != {expected[:8]}",
            file=out,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
