"""Human- and machine-readable views of a traced run.

* :func:`profile_table` -- the per-function text profile (cycles,
  stalls, app/runtime/memcpy split, FRAM traffic, energy share);
* :func:`call_tree_text` -- flamegraph-style inclusive/exclusive tree;
* :func:`collapsed_stacks` -- ``flamegraph.pl``-compatible folded
  stacks (``a;b;c <exclusive cycles>`` per line);
* :func:`trace_report` -- the JSON document written next to every
  Perfetto trace, built on the ``as_dict`` methods of
  :class:`RunResult` and the runtime stats.
"""

import json
from pathlib import Path

from repro.experiments.report import format_table
from repro.obs.perfetto import perfetto_trace, write_trace
from repro.obs.timeline import CALL_KINDS


def profile_rows(session):
    """Per-function dicts sorted by total cycles, energy included."""
    model = session.energy_model
    return [
        profile.as_dict(energy_model=model)
        for profile in session.collector.sorted_profiles()
    ]


def profile_table(session, top=None, title="Per-function attribution"):
    """The text profile table for a finished session."""
    rows = profile_rows(session)
    if top is not None:
        rows = rows[:top]
    total = max(session.collector.total_cycles, 1)
    headers = (
        "function", "calls", "instrs", "cycles", "%",
        "stalls", "app", "runtime", "memcpy", "fram", "energy(nJ)",
    )
    table = [
        [
            row["name"],
            row["calls"],
            row["instructions"],
            row["cycles"],
            f"{100.0 * row['cycles'] / total:.1f}",
            row["stalls"],
            row["app_cycles"],
            row["runtime_cycles"],
            row["memcpy_cycles"],
            row["fram_accesses"],
            f"{row['energy_nj']:.0f}",
        ]
        for row in rows
    ]
    return format_table(headers, table, title=title)


def call_tree_text(session, max_depth=None, min_percent=0.5):
    """Indented inclusive/exclusive call tree (flamegraph in text form)."""
    root = session.call_tree
    total = max(root.inclusive, 1)
    lines = []

    def visit(node, depth):
        if max_depth is not None and depth > max_depth:
            return
        inclusive = node.inclusive
        percent = 100.0 * inclusive / total
        if percent < min_percent:
            return
        lines.append(
            f"{'  ' * depth}{node.name}  "
            f"incl={inclusive} ({percent:.1f}%)  excl={node.cycles}  "
            f"calls={node.calls}"
        )
        for child in sorted(
            node.children.values(), key=lambda child: child.inclusive, reverse=True
        ):
            visit(child, depth + 1)

    for child in sorted(
        root.children.values(), key=lambda child: child.inclusive, reverse=True
    ):
        visit(child, 0)
    return "\n".join(lines)


def collapsed_stacks(session):
    """Folded stacks: one ``frame;frame;... exclusive_cycles`` per line."""
    lines = []

    def visit(node, prefix):
        path = f"{prefix};{node.name}" if prefix else node.name
        if node.cycles:
            lines.append(f"{path} {node.cycles}")
        for child in sorted(node.children.values(), key=lambda child: child.name):
            visit(child, path)

    for child in sorted(session.call_tree.children.values(),
                        key=lambda child: child.name):
        visit(child, "")
    return "\n".join(lines)


def occupancy_table(session, top=None):
    """Cache residency intervals as text."""
    intervals = session.occupancy()
    if top is not None:
        intervals = intervals[:top]
    rows = [
        [
            interval["func"],
            f"{interval['address']:#06x}",
            interval["size"],
            interval["start_cycle"],
            interval["end_cycle"] if interval["end_cycle"] is not None else "-",
        ]
        for interval in intervals
    ]
    return format_table(
        ("function", "address", "bytes", "cached@", "evicted@"),
        rows,
        title="SRAM cache residency",
    )


def trace_report(session, label=""):
    """The machine-readable sidecar document for a traced run."""
    report = {
        "label": label,
        "frequency_mhz": session.frequency_mhz,
        "functions": profile_rows(session),
        "call_tree": session.call_tree.as_dict(),
        "collapsed_stacks": collapsed_stacks(session).splitlines(),
        "occupancy": session.occupancy(),
        "events": [
            event.as_dict()
            for event in session.events
            if event.kind not in CALL_KINDS
        ],
        "event_counts": session.timeline.by_kind(),
        "events_dropped": session.timeline.dropped,
    }
    host_seconds = getattr(session, "host_seconds", 0.0)
    if host_seconds:
        report["host"] = {"seconds": host_seconds}
        if session.result is not None:
            report["host"]["instructions_per_s"] = (
                session.result.instructions / host_seconds
            )
    if session.result is not None:
        report["result"] = session.result.as_dict()
    stats = session.stats
    if stats is not None and hasattr(stats, "as_dict"):
        report["stats"] = stats.as_dict()
    return report


def write_session_artifacts(session, path, label="", extra_metadata=None):
    """Write the Perfetto trace plus its sidecar report.

    *path* is the trace destination; the report lands next to it with a
    ``.report.json`` suffix. Returns ``(trace_path, report_path)``.
    """
    trace_path = write_trace(
        path, perfetto_trace(session, extra_metadata=extra_metadata)
    )
    report_path = Path(trace_path).with_suffix(".report.json")
    report_path.write_text(
        json.dumps(trace_report(session, label=label), indent=2)
    )
    return trace_path, report_path
