"""Per-instruction attribution: profiles and the call tree.

The collector wraps ``cpu.step`` (the same detachable-decorator idiom
:class:`~repro.machine.tracelog.TraceLog` uses on the bus) and, for each
executed instruction or native-hook invocation, diffs the board's
counters to attribute cycles, stalls, attribution-split unstalled
cycles, and FRAM/SRAM traffic to the function owning the current PC.
Nothing in the machine layer changes, so a board without a collector
attached runs the original, unwrapped hot path -- zero overhead.

Call/return edges are inferred from PC/SP movement:

* a frame is pushed when execution enters a different function at a
  lower stack pointer (a CALL pushed the return address);
* frames are popped when SP rises above a frame's entry SP (RET popped
  the return address -- multi-level pops handle trampolines);
* a transfer to another function at the *same* SP replaces the top
  frame: that is the miss handler branching to the function it just
  cached, or a block-cache stub chain -- a continuation, not a call.

This yields a call-stack track for the Perfetto export and an
inclusive/exclusive call tree for flamegraph-style reports, and the
exclusive cycle attribution sums *exactly* to the run's total cycles.
"""

from dataclasses import dataclass, field

from repro.isa.registers import PC, SP
from repro.machine.memory import RegionKind
from repro.machine.trace import Attribution


@dataclass
class FunctionProfile:
    """Everything attributed to one function over a traced run."""

    name: str
    instructions: int = 0  # executed + modelled (cost-charged) instructions
    calls: int = 0  # frames entered
    cycles: int = 0  # total (unstalled + stalls)
    stalls: int = 0
    app_cycles: int = 0  # unstalled, by Figure 8 attribution
    runtime_cycles: int = 0
    memcpy_cycles: int = 0
    fram_reads: int = 0  # logical FRAM words (fetches + data reads)
    fram_writes: int = 0
    sram_accesses: int = 0

    @property
    def fram_accesses(self):
        return self.fram_reads + self.fram_writes

    def energy_nj(self, model):
        """This function's share of the linear energy model."""
        return (
            self.cycles * model.core_nj_per_cycle
            + self.fram_reads * model.fram_read_nj
            + self.fram_writes * model.fram_write_nj
            + self.sram_accesses * model.sram_access_nj
        )

    def as_dict(self, energy_model=None):
        record = {
            "name": self.name,
            "instructions": self.instructions,
            "calls": self.calls,
            "cycles": self.cycles,
            "stalls": self.stalls,
            "app_cycles": self.app_cycles,
            "runtime_cycles": self.runtime_cycles,
            "memcpy_cycles": self.memcpy_cycles,
            "fram_accesses": self.fram_accesses,
            "fram_writes": self.fram_writes,
            "sram_accesses": self.sram_accesses,
        }
        if energy_model is not None:
            record["energy_nj"] = self.energy_nj(energy_model)
        return record


@dataclass
class CallNode:
    """One node of the inclusive/exclusive call tree."""

    name: str
    calls: int = 0
    cycles: int = 0  # exclusive
    children: dict = field(default_factory=dict)

    def child(self, name):
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = CallNode(name)
        return node

    @property
    def inclusive(self):
        return self.cycles + sum(
            child.inclusive for child in self.children.values()
        )

    def as_dict(self):
        return {
            "name": self.name,
            "calls": self.calls,
            "exclusive_cycles": self.cycles,
            "inclusive_cycles": self.inclusive,
            "children": [
                child.as_dict()
                for child in sorted(
                    self.children.values(),
                    key=lambda node: node.inclusive,
                    reverse=True,
                )
            ],
        }


class _Frame:
    __slots__ = ("name", "entry_sp", "node")

    def __init__(self, name, entry_sp, node):
        self.name = name
        self.entry_sp = entry_sp
        self.node = node


class Collector:
    """Wraps a board's CPU step and bus to attribute execution."""

    def __init__(self, board, funcmap, timeline=None):
        self.board = board
        self.cpu = board.cpu
        self.bus = board.bus
        self.counters = board.counters
        self.funcmap = funcmap
        self.timeline = timeline
        self.profiles = {}  # name -> FunctionProfile
        self.root = CallNode("<root>")
        self._stack = []
        self._original_step = None
        self._original_bus = None
        self._finished = False
        # Bus traffic tallies, diffed per instruction.
        self._fram_reads = 0
        self._fram_writes = 0
        self._sram = 0

    # -- attachment ----------------------------------------------------------------

    def attach(self):
        """Wrap the CPU step and bus access methods (idempotent)."""
        if self._original_step is not None:
            return self
        self._original_step = self.cpu.step
        self._wrap_bus()
        self.cpu.step = self._step
        return self

    def detach(self):
        if self._original_step is None:
            return self
        del self.cpu.step  # restore the class method
        self._original_step = None
        self._unwrap_bus()
        return self

    def __enter__(self):
        return self.attach()

    def __exit__(self, *exc):
        self.detach()
        self.finish()
        return False

    def _wrap_bus(self):
        bus = self.bus
        kinds = bus._kinds
        fram, sram = RegionKind.FRAM, RegionKind.SRAM
        self._original_bus = (
            bus.fetch_word,
            bus.account_fetch,
            bus.read,
            bus.write,
        )
        orig_fetch, orig_account, orig_read, orig_write = self._original_bus

        def fetch_word(address):
            kind = kinds[address & 0xFFFF]
            if kind is fram:
                self._fram_reads += 1
            elif kind is sram:
                self._sram += 1
            return orig_fetch(address)

        def account_fetch(address, words):
            kind = kinds[address & 0xFFFF]
            if kind is fram:
                self._fram_reads += words
            elif kind is sram:
                self._sram += words
            return orig_account(address, words)

        def read(address, byte=False):
            kind = kinds[address & 0xFFFF]
            if kind is fram:
                self._fram_reads += 1
            elif kind is sram:
                self._sram += 1
            return orig_read(address, byte=byte)

        def write(address, value, byte=False):
            kind = kinds[address & 0xFFFF]
            if kind is fram:
                self._fram_writes += 1
            elif kind is sram:
                self._sram += 1
            return orig_write(address, value, byte=byte)

        bus.fetch_word = fetch_word
        bus.account_fetch = account_fetch
        bus.read = read
        bus.write = write

    def _unwrap_bus(self):
        if self._original_bus is None:
            return
        bus = self.bus
        bus.fetch_word, bus.account_fetch, bus.read, bus.write = self._original_bus
        self._original_bus = None

    # -- the wrapped step ----------------------------------------------------------

    def _step(self):
        cpu = self.cpu
        regs = cpu.regs
        counters = self.counters
        cycles = counters.cycles

        pc = regs[PC]
        name = self.funcmap.resolve(pc)
        self._sync_stack(name, regs[SP])

        app0 = cycles[Attribution.APP]
        run0 = cycles[Attribution.RUNTIME]
        mem0 = cycles[Attribution.MEMCPY]
        start0 = cycles[Attribution.STARTUP]
        stall0 = counters.stall_cycles
        fr0, fw0, sr0 = self._fram_reads, self._fram_writes, self._sram
        # Board-level instruction count: real executed instructions plus
        # the runtime's modelled (cost-charged) ones, so per-function
        # sums match RunResult.instructions exactly.
        retired0 = counters.total_instructions

        alive = self._original_step()

        profile = self.profiles.get(name)
        if profile is None:
            profile = self.profiles[name] = FunctionProfile(name)
        app = cycles[Attribution.APP] - app0 + cycles[Attribution.STARTUP] - start0
        run = cycles[Attribution.RUNTIME] - run0
        mem = cycles[Attribution.MEMCPY] - mem0
        stalls = counters.stall_cycles - stall0
        total = app + run + mem + stalls
        profile.instructions += counters.total_instructions - retired0
        profile.cycles += total
        profile.stalls += stalls
        profile.app_cycles += app
        profile.runtime_cycles += run
        profile.memcpy_cycles += mem
        profile.fram_reads += self._fram_reads - fr0
        profile.fram_writes += self._fram_writes - fw0
        profile.sram_accesses += self._sram - sr0
        if self._stack:
            self._stack[-1].node.cycles += total
        return alive

    def _sync_stack(self, name, sp):
        stack = self._stack
        if not stack:
            self._push(name, sp)
            return
        top = stack[-1]
        # Returns: SP rose past the frame's entry SP (the return address
        # was popped). The root frame never pops -- nothing to return to.
        while len(stack) > 1 and sp > top.entry_sp:
            self._pop(top)
            stack.pop()
            top = stack[-1]
        if top.name != name:
            if sp == top.entry_sp and len(stack) > 1:
                # Same-stack transfer: handler -> cached copy, stub chain.
                # A continuation of the pending call, not a new one.
                self._pop(top)
                stack.pop()
            self._push(name, sp)
        elif sp > top.entry_sp:
            # Root frame watching crt0 initialise the stack pointer.
            top.entry_sp = sp

    def _push(self, name, sp):
        stack = self._stack
        parent = stack[-1].node if stack else self.root
        node = parent.child(name)
        node.calls += 1
        frame = _Frame(name, sp, node)
        stack.append(frame)
        profile = self.profiles.get(name)
        if profile is None:
            profile = self.profiles[name] = FunctionProfile(name)
        profile.calls += 1
        if self.timeline is not None:
            self.timeline.record("call", func=name)

    def _pop(self, frame):
        if self.timeline is not None:
            self.timeline.record("return", func=frame.name)

    # -- teardown ------------------------------------------------------------------

    def finish(self):
        """Close open frames (emitting their return events); idempotent."""
        if self._finished:
            return self
        self._finished = True
        while self._stack:
            self._pop(self._stack.pop())
        return self

    # -- views ---------------------------------------------------------------------

    @property
    def total_cycles(self):
        return sum(profile.cycles for profile in self.profiles.values())

    def sorted_profiles(self):
        return sorted(
            self.profiles.values(), key=lambda profile: profile.cycles, reverse=True
        )
