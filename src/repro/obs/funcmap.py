"""Exact PC -> function attribution.

The static half of the map comes from the linked program: every
function's entry symbol plus its deterministic instruction-length sum
gives a closed address interval (the same arithmetic the linker's
``measure_sections`` relies on). The runtime areas the cost model
charges against (``__sr_miss_handler``, ``__bb_runtime``, the stub
section) become pseudo-functions so handler time is attributed rather
than lost.

The dynamic half covers self-modifying execution: addresses inside the
SRAM cache window are resolved through the live runtime state (the
SwapRAM policy's node list, the block cache's slot mirror), so an
instruction executing from a cached copy is attributed to the function
that owns those bytes *at that moment*.
"""

from bisect import bisect_right

from repro.isa.encoding import instruction_length
from repro.isa.instructions import Instruction


class FunctionMap:
    """Interval map from PC to function name, with dynamic regions."""

    def __init__(self):
        self._intervals = []  # (start, end, name), sorted after seal()
        self._starts = []
        self._dynamic = []  # (start, end, resolver(address) -> name)
        self._hot = (1, 0, "")  # last static hit; start > end == never

    # -- construction ----------------------------------------------------------

    def add_function(self, name, start, size):
        if size > 0:
            self._intervals.append((start, start + size, name))
        return self

    def add_region(self, name, start, size):
        """A pseudo-function (runtime area, stub section...)."""
        return self.add_function(name, start, size)

    def add_dynamic(self, start, end, resolver):
        """Resolve [start, end) through *resolver* at lookup time."""
        self._dynamic.append((start, end, resolver))
        return self

    def seal(self):
        self._intervals.sort()
        self._starts = [interval[0] for interval in self._intervals]
        return self

    # -- lookup (hot path while tracing) ------------------------------------------

    def resolve(self, address):
        start, end, name = self._hot
        if start <= address < end:
            return name
        for start, end, resolver in self._dynamic:
            if start <= address < end:
                return resolver(address)
        index = bisect_right(self._starts, address) - 1
        if index >= 0:
            interval = self._intervals[index]
            if interval[0] <= address < interval[1]:
                self._hot = interval
                return interval[2]
        return f"<unmapped:{address:#06x}>"

    def functions(self):
        """Static (start, end, name) triples, address-ordered."""
        return list(self._intervals)


def _function_size(function):
    return sum(
        instruction_length(item)
        for item in function.items
        if isinstance(item, Instruction)
    )


def _static_map(linked):
    """Map every function of a linked program by symbol + length sum."""
    if getattr(linked, "program", None) is None:
        raise ValueError(
            "linked program does not carry its assembly Program; "
            "build it through repro.toolchain.linker.link()"
        )
    symbols = linked.image.symbols
    funcmap = FunctionMap()
    for function in linked.program.functions:
        start = symbols.get(function.name)
        if start is None:
            continue
        funcmap.add_function(function.name, start, _function_size(function))
    return funcmap


class _SwapRamCacheResolver:
    """Attribute SRAM cache addresses to the function cached there."""

    def __init__(self, runtime):
        self.runtime = runtime

    def __call__(self, address):
        for node in self.runtime.policy.nodes:
            if node.address <= address < node.end:
                return self.runtime.by_id[node.func_id].name
        return "<cache-free>"


class _BlockSlotResolver:
    """Attribute block-cache slot addresses to the block's function.

    The slot -> block reverse map is rebuilt lazily whenever the
    runtime's miss/flush counters move, so lookups stay O(1) along runs
    of instructions from the same cache state.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self._version = -1
        self._by_slot = {}

    def __call__(self, address):
        runtime = self.runtime
        stats = runtime.stats
        version = stats.misses + stats.flushes
        if version != self._version:
            self._by_slot = {
                slot: runtime.meta.blocks[block_id].function
                for block_id, slot in runtime.cached_blocks.items()
            }
            self._version = version
        slot = (address - runtime.cache_base) // runtime.slot_bytes
        return self._by_slot.get(slot, "<slot-free>")


def map_for_board(board):
    """PC map for a plain baseline board (static code only)."""
    return _static_map(board.linked).seal()


def map_for_swapram(system):
    """PC map for a SwapRAM system: NVM functions, runtime area, cache."""
    funcmap = _static_map(system.linked)
    extents = system.linked.image.section_extents
    base, size = extents.get("srruntime", (0, 0))
    funcmap.add_region("__sr_runtime", base, size)
    policy = system.runtime.policy
    funcmap.add_dynamic(policy.base, policy.end, _SwapRamCacheResolver(system.runtime))
    return funcmap.seal()


def map_for_blockcache(system):
    """PC map for a block-cache system: stubs, runtime area, slots."""
    funcmap = _static_map(system.linked)
    extents = system.linked.image.section_extents
    for section, name in (("bbruntime", "__bb_runtime"), ("bbstubs", "__bb_stubs")):
        base, size = extents.get(section, (0, 0))
        funcmap.add_region(name, base, size)
    runtime = system.runtime
    slots_end = runtime.cache_base + runtime.num_slots * runtime.slot_bytes
    funcmap.add_dynamic(runtime.cache_base, slots_end, _BlockSlotResolver(runtime))
    return funcmap.seal()


def build_function_map(target):
    """Dispatch on system flavour: SwapRAM, block cache, or bare board."""
    runtime = getattr(target, "runtime", None)
    if runtime is not None and hasattr(runtime, "policy"):
        return map_for_swapram(target)
    if runtime is not None and hasattr(runtime, "cached_blocks"):
        return map_for_blockcache(target)
    return map_for_board(target)
