"""One-call attach/finish glue for tracing a built system.

:class:`TraceSession` wires the three observability pieces together for
any runnable the builders produce -- a baseline :class:`Board`, a
:class:`~repro.core.system.SwapRamSystem` or a
:class:`~repro.blockcache.system.BlockCacheSystem`:

* a :class:`~repro.obs.timeline.Timeline` stamped from the board's
  counters, handed to the runtime's opt-in ``timeline`` hook;
* a :class:`~repro.obs.funcmap.FunctionMap` built for the system
  flavour (NVM symbols, runtime areas, live SRAM cache state);
* a :class:`~repro.obs.collector.Collector` wrapping the CPU step.

Typical use::

    system = build_swapram(source, PLANS["unified"])
    session = TraceSession.attach(system)
    result = system.run()
    session.finish(result)
    write_trace(path, perfetto_trace(session))
"""

from repro.metrics.registry import PhaseTimer
from repro.obs.collector import Collector
from repro.obs.funcmap import build_function_map
from repro.obs.timeline import Timeline, occupancy_intervals

_TRACED_PHASE = "traced-run"


class TraceSession:
    """A live tracing attachment to one board/system."""

    def __init__(self, target, board, timeline, collector, timer=None):
        self.target = target
        self.board = board
        self.timeline = timeline
        self.collector = collector
        self.timer = timer if timer is not None else PhaseTimer()
        self.result = None

    @classmethod
    def attach(cls, target, events_limit=None):
        """Attach tracing to a built (not yet run) system or board."""
        board = getattr(target, "board", target)
        timeline = Timeline(board.counters, limit=events_limit)
        funcmap = build_function_map(target)
        collector = Collector(board, funcmap, timeline=timeline).attach()
        runtime = getattr(target, "runtime", None)
        if runtime is not None:
            runtime.timeline = timeline
        # Host wall-clock flows through the shared PhaseTimer API (see
        # repro.metrics.registry): the attach->finish span brackets the
        # traced run.
        timer = PhaseTimer().start(_TRACED_PHASE)
        return cls(target, board, timeline, collector, timer=timer)

    def finish(self, result=None):
        """Detach, close open call frames, and freeze the session."""
        if self.timer.running(_TRACED_PHASE):
            self.timer.stop(_TRACED_PHASE)
        self.collector.detach()
        self.collector.finish()
        runtime = getattr(self.target, "runtime", None)
        if runtime is not None:
            runtime.timeline = None
        if result is None and self.board.bus.halted:
            result = self.board.result()
        self.result = result
        return self

    # -- views ---------------------------------------------------------------------

    @property
    def events(self):
        return self.timeline.events

    @property
    def profiles(self):
        return self.collector.profiles

    @property
    def call_tree(self):
        return self.collector.root

    @property
    def frequency_mhz(self):
        return self.board.frequency_mhz

    @property
    def energy_model(self):
        return self.board.energy_model

    @property
    def stats(self):
        return getattr(self.target, "stats", None)

    @property
    def host_seconds(self):
        """Host wall-clock between attach and finish (the traced span)."""
        return self.timer.seconds(_TRACED_PHASE)

    def occupancy(self):
        """Cache residency intervals over the whole run."""
        final = self.result.total_cycles if self.result is not None else None
        return occupancy_intervals(self.events, final_cycle=final)
