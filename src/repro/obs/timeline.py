"""The structured runtime event timeline.

Aggregate counters (:class:`~repro.machine.trace.AccessCounters`,
``SwapRamStats``) say *how much* happened; the timeline says *when*.
Every runtime event -- miss, cache, evict, abort, nvm-fallback, freeze,
prefetch, and the block cache's hit/flush/chain -- plus every call and
return observed by the :mod:`repro.obs.collector` is recorded as a
:class:`TimelineEvent` stamped with the board's cycle count at the
moment it happened and (for cache events) a snapshot of the SRAM cache
occupancy.

Recording is strictly opt-in: the runtimes carry a ``timeline``
attribute that defaults to ``None`` and is only consulted behind an
``is not None`` guard, so a board that never attaches a timeline pays
nothing.
"""

from dataclasses import dataclass
from typing import Optional

#: Event kinds emitted by the SwapRAM runtime (paper §3.3 control flow).
SWAPRAM_KINDS = (
    "miss",
    "cache",
    "evict",
    "abort",
    "nvm-fallback",
    "freeze",
    "prefetch",
)

#: Event kinds emitted by the block-cache runtime.
BLOCKCACHE_KINDS = ("hit", "miss", "cache", "flush", "chain")

#: Event kinds emitted by the collector's call-stack tracking.
CALL_KINDS = ("call", "return")

#: Event kinds emitted by the fault-injection harness around a
#: power cycle (see :mod:`repro.faults.harness`).
POWER_KINDS = ("power-down", "power-up")

#: Event kinds emitted by the data-plane cache runtime
#: (:mod:`repro.datacache.runtime`). ``writeback`` covers both
#: eviction- and halt-driven drains; ``clean`` is a cleaning-policy
#: drain; ``lost-dirty`` marks a dirty line discarded by power loss.
DATACACHE_KINDS = ("line-fill", "writeback", "clean", "bypass", "lost-dirty")


@dataclass
class TimelineEvent:
    """One timestamped runtime event."""

    cycle: int
    kind: str
    func: str = ""
    func_id: int = -1
    address: Optional[int] = None
    size: Optional[int] = None
    occupancy: Optional[int] = None  # SRAM cache bytes in use, if known
    note: str = ""

    def as_dict(self):
        record = {"cycle": self.cycle, "kind": self.kind}
        if self.func:
            record["func"] = self.func
        if self.func_id >= 0:
            record["func_id"] = self.func_id
        if self.address is not None:
            record["address"] = self.address
        if self.size is not None:
            record["size"] = self.size
        if self.occupancy is not None:
            record["occupancy"] = self.occupancy
        if self.note:
            record["note"] = self.note
        return record

    def __str__(self):
        parts = [f"{self.cycle:>10}", f"{self.kind:<12}", self.func or "-"]
        if self.address is not None:
            parts.append(f"@{self.address:#06x}")
        if self.size is not None:
            parts.append(f"{self.size}B")
        if self.occupancy is not None:
            parts.append(f"occ={self.occupancy}")
        if self.note:
            parts.append(f"({self.note})")
        return " ".join(parts)


class Timeline:
    """An append-only event log stamped from a board's cycle counters.

    *counters* is the board's :class:`AccessCounters`; the stamp is its
    ``total_cycles`` at record time, so events recorded in order carry
    monotonically non-decreasing timestamps. *limit* optionally bounds
    the kept events; once full, further events are counted in
    ``dropped`` but not stored.
    """

    def __init__(self, counters, limit=None):
        self.counters = counters
        self.limit = limit
        self.events = []
        self.dropped = 0

    @property
    def cycle(self):
        """The board's current cycle count (the next event's stamp)."""
        return self.counters.total_cycles

    def record(
        self,
        kind,
        func="",
        func_id=-1,
        address=None,
        size=None,
        occupancy=None,
        note="",
    ):
        """Append one event stamped with the current cycle count."""
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return None
        event = TimelineEvent(
            cycle=self.counters.total_cycles,
            kind=kind,
            func=func,
            func_id=func_id,
            address=address,
            size=size,
            occupancy=occupancy,
            note=note,
        )
        self.events.append(event)
        return event

    def by_kind(self):
        """Event count per kind."""
        tally = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    def of_kind(self, *kinds):
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]


def occupancy_intervals(events, final_cycle=None):
    """Which function occupied which SRAM bytes, when.

    Folds the timeline's ``cache``/``prefetch`` and ``evict``/``flush``
    events into residency intervals::

        {"func": ..., "address": ..., "size": ...,
         "start_cycle": ..., "end_cycle": ...}

    ``end_cycle`` is ``None`` for functions still resident at the end of
    the run unless *final_cycle* is given.
    """
    live = {}  # address -> open interval dict
    intervals = []

    def close(interval, cycle):
        interval["end_cycle"] = cycle
        intervals.append(interval)

    for event in events:
        if event.kind in ("cache", "prefetch") and event.address is not None:
            # Re-caching over a stale address closes the old residency.
            if event.address in live:
                close(live.pop(event.address), event.cycle)
            live[event.address] = {
                "func": event.func,
                "address": event.address,
                "size": event.size,
                "start_cycle": event.cycle,
                "end_cycle": None,
            }
        elif event.kind == "evict" and event.address is not None:
            if event.address in live:
                close(live.pop(event.address), event.cycle)
        elif event.kind == "flush":
            for address in sorted(live):
                close(live.pop(address), event.cycle)
    for address in sorted(live):
        interval = live[address]
        interval["end_cycle"] = final_cycle
        intervals.append(interval)
    intervals.sort(key=lambda interval: (interval["start_cycle"], interval["address"]))
    return intervals
