"""Chrome/Perfetto ``trace_event`` JSON export.

Produces the JSON-object flavour of the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* a **call-stack track** (tid 1) of ``B``/``E`` duration events from the
  collector's call/return timeline;
* a **cache-events track** (tid 2) of ``i`` instant events for every
  runtime event (miss, cache, evict, abort, nvm-fallback, freeze,
  prefetch, hit, flush, chain);
* a **cache-occupancy counter track** (``C`` events) sampled at every
  event that carries an occupancy snapshot.

Timestamps are microseconds at the board's configured clock
(``cycle / frequency_mhz``), so Perfetto's time axis reads as simulated
wall-clock and slice widths are honest cycle counts.

``validate_trace`` is the schema check shared by the unit tests, the
CLI (which refuses to write an invalid trace) and the CI smoke job.
"""

import json
from pathlib import Path

PID = 1

_METADATA = [
    {"ph": "M", "pid": PID, "name": "process_name", "args": {"name": "repro board"}},
    {"ph": "M", "pid": PID, "tid": 1, "name": "thread_name",
     "args": {"name": "call stack"}},
    {"ph": "M", "pid": PID, "tid": 2, "name": "thread_name",
     "args": {"name": "cache events"}},
]


def perfetto_events(session):
    """Flatten a finished :class:`TraceSession` into trace events.

    The B/E call-stack track is re-bracketed here rather than trusting
    the raw call/return stream: an ``events_limit`` can drop returns
    (or calls) from the timeline's tail, so orphaned returns are
    skipped and frames still open at the end are closed at the final
    timestamp -- the exported trace always validates.
    """
    scale = 1.0 / session.frequency_mhz  # cycles -> microseconds
    events = list(_METADATA)
    open_frames = []  # names of currently-open B events on tid 1
    last_ts = 0.0
    for event in session.events:
        ts = event.cycle * scale
        last_ts = max(last_ts, ts)
        if event.kind == "call":
            events.append(
                {"ph": "B", "pid": PID, "tid": 1, "ts": ts,
                 "cat": "function", "name": event.func}
            )
            open_frames.append(event.func)
        elif event.kind == "return":
            if not open_frames:
                continue  # its B was dropped by the event limit
            events.append(
                {"ph": "E", "pid": PID, "tid": 1, "ts": ts,
                 "cat": "function", "name": open_frames.pop()}
            )
        else:
            args = {
                key: value
                for key, value in event.as_dict().items()
                if key not in ("cycle", "kind") and value != ""
            }
            events.append(
                {"ph": "i", "pid": PID, "tid": 2, "ts": ts, "s": "t",
                 "cat": "cache", "name": event.kind, "args": args}
            )
        if event.occupancy is not None:
            events.append(
                {"ph": "C", "pid": PID, "ts": ts, "name": "cache-occupancy",
                 "args": {"used_bytes": event.occupancy}}
            )
    if session.result is not None:
        last_ts = max(last_ts, session.result.total_cycles * scale)
    while open_frames:
        events.append(
            {"ph": "E", "pid": PID, "tid": 1, "ts": last_ts,
             "cat": "function", "name": open_frames.pop()}
        )
    return events


def perfetto_trace(session, extra_metadata=None):
    """The full JSON-object trace for a finished session."""
    trace = {
        "traceEvents": perfetto_events(session),
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs",
            "frequency_mhz": session.frequency_mhz,
        },
    }
    if session.result is not None:
        trace["otherData"]["total_cycles"] = session.result.total_cycles
    if extra_metadata:
        trace["otherData"].update(extra_metadata)
    return trace


def validate_trace(trace):
    """Schema-check a trace object; returns a list of problems (empty = ok).

    Checks the invariants Perfetto's importer relies on: required keys
    per phase, per-thread timestamp monotonicity for duration events,
    and properly nested, name-matched B/E pairs.
    """
    problems = []
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        return ["trace is not an object with a traceEvents list"]
    stacks = {}  # tid -> [name, ...]
    last_ts = {}  # tid -> ts
    for index, event in enumerate(trace["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("B", "E", "i", "C", "M", "X"):
            problems.append(f"event {index}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
            problems.append(f"event {index}: missing/negative ts")
            continue
        if "pid" not in event:
            problems.append(f"event {index}: missing pid")
        if ph in ("B", "E", "i", "X"):
            tid = event.get("tid")
            if tid is None:
                problems.append(f"event {index}: missing tid")
                continue
            previous = last_ts.get(tid)
            if previous is not None and event["ts"] < previous:
                problems.append(
                    f"event {index}: ts {event['ts']} < previous "
                    f"{previous} on tid {tid}"
                )
            last_ts[tid] = event["ts"]
        if ph in ("B", "i", "C", "X") and not event.get("name"):
            problems.append(f"event {index}: missing name")
        if ph == "B":
            stacks.setdefault(tid, []).append(event.get("name"))
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if not stack:
                problems.append(f"event {index}: E without matching B")
            else:
                opened = stack.pop()
                name = event.get("name")
                if name and name != opened:
                    problems.append(
                        f"event {index}: E name {name!r} does not match "
                        f"open B {opened!r}"
                    )
        elif ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"event {index}: counter without args")
    for tid, stack in stacks.items():
        if stack:
            problems.append(f"tid {tid}: {len(stack)} unclosed B event(s)")
    return problems


def track_name_problems(trace):
    """Tracks that would render as bare integers in the Perfetto UI.

    Every pid that emits events must carry a ``process_name`` "M"
    metadata event, and every (pid, tid) pair used by duration/instant
    events a ``thread_name`` one. Returns a sorted list of problem
    strings (empty = every track is named).
    """
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        return ["trace is not an object with a traceEvents list"]
    named_processes = set()
    named_threads = set()
    for event in trace["traceEvents"]:
        if not isinstance(event, dict) or event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            named_processes.add(event.get("pid"))
        elif event.get("name") == "thread_name":
            named_threads.add((event.get("pid"), event.get("tid")))
    problems = set()
    for event in trace["traceEvents"]:
        if not isinstance(event, dict) or event.get("ph") == "M":
            continue
        pid = event.get("pid")
        if pid not in named_processes:
            problems.add(f"pid {pid} has no process_name metadata")
        if event.get("ph") in ("B", "E", "i", "X"):
            tid = event.get("tid")
            if (pid, tid) not in named_threads:
                problems.add(
                    f"pid {pid} tid {tid} has no thread_name metadata"
                )
    return sorted(problems)


def write_trace(path, trace):
    """Validate and write *trace* as JSON; returns the path.

    Raises :class:`ValueError` on schema problems so callers never ship
    a trace Perfetto would reject.
    """
    problems = validate_trace(trace)
    if problems:
        raise ValueError(
            "refusing to write invalid trace: " + "; ".join(problems[:5])
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, indent=None, separators=(",", ":")))
    return path
