"""Chrome/Perfetto ``trace_event`` JSON export of guest runs.

Produces the JSON-object flavour of the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* a **call-stack track** (tid 1) of ``B``/``E`` duration events from the
  collector's call/return timeline;
* a **cache-events track** (tid 2) of ``i`` instant events for every
  runtime event (miss, cache, evict, abort, nvm-fallback, freeze,
  prefetch, hit, flush, chain);
* a **cache-occupancy counter track** (``C`` events) sampled at every
  event that carries an occupancy snapshot.

Timestamps are microseconds at the board's configured clock
(``cycle / frequency_mhz``), so Perfetto's time axis reads as simulated
wall-clock and slice widths are honest cycle counts.

The format-level helpers -- ``validate_trace``, ``track_name_problems``
and ``write_trace`` -- live in :mod:`repro.trace_event`, shared with
the orchestration-plane exporter (:mod:`repro.tracing.perfetto`) and
the cache-analytics exporter (:mod:`repro.analysis.report`). They are
re-exported here so existing imports keep working.
"""

from repro.trace_event import (  # noqa: F401  (re-exported compatibility API)
    metadata_events,
    track_name_problems,
    validate_trace,
    write_trace,
)

PID = 1

_METADATA = metadata_events(
    PID, "repro board", {1: "call stack", 2: "cache events"}
)


def perfetto_events(session):
    """Flatten a finished :class:`TraceSession` into trace events.

    The B/E call-stack track is re-bracketed here rather than trusting
    the raw call/return stream: an ``events_limit`` can drop returns
    (or calls) from the timeline's tail, so orphaned returns are
    skipped and frames still open at the end are closed at the final
    timestamp -- the exported trace always validates.
    """
    scale = 1.0 / session.frequency_mhz  # cycles -> microseconds
    events = list(_METADATA)
    open_frames = []  # names of currently-open B events on tid 1
    last_ts = 0.0
    for event in session.events:
        ts = event.cycle * scale
        last_ts = max(last_ts, ts)
        if event.kind == "call":
            events.append(
                {"ph": "B", "pid": PID, "tid": 1, "ts": ts,
                 "cat": "function", "name": event.func}
            )
            open_frames.append(event.func)
        elif event.kind == "return":
            if not open_frames:
                continue  # its B was dropped by the event limit
            events.append(
                {"ph": "E", "pid": PID, "tid": 1, "ts": ts,
                 "cat": "function", "name": open_frames.pop()}
            )
        else:
            args = {
                key: value
                for key, value in event.as_dict().items()
                if key not in ("cycle", "kind") and value != ""
            }
            events.append(
                {"ph": "i", "pid": PID, "tid": 2, "ts": ts, "s": "t",
                 "cat": "cache", "name": event.kind, "args": args}
            )
        if event.occupancy is not None:
            events.append(
                {"ph": "C", "pid": PID, "ts": ts, "name": "cache-occupancy",
                 "args": {"used_bytes": event.occupancy}}
            )
    if session.result is not None:
        last_ts = max(last_ts, session.result.total_cycles * scale)
    while open_frames:
        events.append(
            {"ph": "E", "pid": PID, "tid": 1, "ts": last_ts,
             "cat": "function", "name": open_frames.pop()}
        )
    return events


def perfetto_trace(session, extra_metadata=None):
    """The full JSON-object trace for a finished session."""
    trace = {
        "traceEvents": perfetto_events(session),
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs",
            "frequency_mhz": session.frequency_mhz,
        },
    }
    if session.result is not None:
        trace["otherData"]["total_cycles"] = session.result.total_cycles
    if extra_metadata:
        trace["otherData"].update(extra_metadata)
    return trace
