"""Opt-in observability: timelines, per-function profiles, Perfetto.

Everything here attaches from the outside -- the machine layer and the
cache runtimes carry no tracing cost unless a :class:`TraceSession` is
attached (see ``benchmarks/test_simulator_speed.py`` for the guard).

* :mod:`repro.obs.timeline` -- cycle-stamped runtime events (miss,
  cache, evict, abort, nvm-fallback, freeze, prefetch, ...);
* :mod:`repro.obs.funcmap` -- exact PC -> function attribution,
  including self-modifying SRAM cache contents;
* :mod:`repro.obs.collector` -- per-function cycle/stall/energy split
  and the inferred call tree;
* :mod:`repro.obs.perfetto` -- Chrome/Perfetto ``trace_event`` export;
* :mod:`repro.obs.report` -- text tables, folded stacks, JSON reports;
* :mod:`repro.obs.cli` -- the ``repro trace`` subcommand.
"""

from repro.obs.collector import CallNode, Collector, FunctionProfile
from repro.obs.funcmap import FunctionMap, build_function_map
from repro.obs.perfetto import (
    perfetto_events,
    perfetto_trace,
    validate_trace,
    write_trace,
)
from repro.obs.report import (
    call_tree_text,
    collapsed_stacks,
    occupancy_table,
    profile_rows,
    profile_table,
    trace_report,
    write_session_artifacts,
)
from repro.obs.session import TraceSession
from repro.obs.timeline import Timeline, TimelineEvent, occupancy_intervals

__all__ = [
    "CallNode",
    "Collector",
    "FunctionMap",
    "FunctionProfile",
    "Timeline",
    "TimelineEvent",
    "TraceSession",
    "build_function_map",
    "call_tree_text",
    "collapsed_stacks",
    "occupancy_intervals",
    "occupancy_table",
    "perfetto_events",
    "perfetto_trace",
    "profile_rows",
    "profile_table",
    "trace_report",
    "validate_trace",
    "write_session_artifacts",
    "write_trace",
]
