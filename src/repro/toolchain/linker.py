"""Linker: assign sections to memory regions and produce an image.

A :class:`MemoryPlan` says which physical region each logical section
(code, read-only data, mutable data + stack) goes to. The plans used in
the paper's experiments:

* ``unified``  -- everything in FRAM; SRAM left entirely free. This is
  the NVRAM unified-memory model (§2.2) and the baseline for most of
  the evaluation. The free SRAM is what SwapRAM turns into its cache.
* ``standard`` -- code in FRAM, data/stack in SRAM: the conventional
  flash-style configuration (Figure 1's "FRAM code / SRAM data" and the
  baseline of §5.5).
* ``code_sram`` / ``all_sram`` -- the remaining Figure 1 corners.
* split-SRAM -- ``standard`` plus ``sram_reserve_for_cache`` carving the
  rest of SRAM out for the software cache (§5.5 / Figure 10).

Capacity overruns raise :class:`FitError`: the paper's DNF outcome.
"""

from dataclasses import dataclass, field, replace

from repro.asm.assembler import SectionLayout, assemble
from repro.asm.ast import DataItem, Label
from repro.isa.encoding import instruction_length
from repro.isa.instructions import Instruction
from repro.machine.memory import fr2355_memory_map


class FitError(Exception):
    """The program does not fit the platform (the paper's DNF result)."""


#: The scaled evaluation platform. Benchmark inputs are scaled down
#: ~4-8x so runs finish under a Python interpreter, and the memories are
#: scaled by the same factor -- preserving the FR2355's 8:1 FRAM:SRAM
#: ratio (32 KiB : 4 KiB -> 8 KiB : 1 KiB), the fraction of FRAM the
#: binaries occupy, and therefore the paper's fit/DNF and cache-pressure
#: behaviour. Pass explicit sizes for full-scale FR2355 simulation.
EVAL_SRAM_BYTES = 0x400
EVAL_FRAM_BYTES = 0x2000


@dataclass(frozen=True)
class MemoryPlan:
    """Where each logical section lives. Values are 'fram' or 'sram'."""

    name: str
    text: str = "fram"
    rodata: str = "fram"
    data: str = "fram"
    stack_size: int = 0x100
    sram_size: int = EVAL_SRAM_BYTES
    fram_size: int = EVAL_FRAM_BYTES
    #: Bytes at the *end* of SRAM reserved for a software code cache.
    sram_reserve_for_cache: int = 0

    def with_cache_reserve(self, nbytes):
        return replace(self, sram_reserve_for_cache=nbytes)

    def scaled(self, sram_size, fram_size):
        return replace(self, sram_size=sram_size, fram_size=fram_size)


PLANS = {
    "unified": MemoryPlan("unified"),
    "standard": MemoryPlan("standard", data="sram"),
    "code_sram": MemoryPlan("code_sram", text="sram", rodata="fram", data="fram"),
    "all_sram": MemoryPlan("all_sram", text="sram", rodata="sram", data="sram"),
}


@dataclass
class LinkedProgram:
    """A linked image plus the placement facts downstream layers need."""

    image: object
    plan: MemoryPlan
    layout: SectionLayout
    stack_top: int
    cache_base: int  # first SRAM byte available as software cache
    cache_size: int
    memory_map: object
    section_sizes: dict
    #: The assembly-level program the image was built from. Kept so
    #: observability can recover exact per-function address ranges
    #: (symbol start + summed instruction lengths).
    program: object = field(default=None, repr=False)

    @property
    def nvm_code_bytes(self):
        """Bytes of code placed in FRAM (Figure 7's application bar)."""
        return self.section_sizes["text"] if self.plan.text == "fram" else 0


def measure_sections(program):
    """Section sizes in bytes without assembling (deterministic lengths)."""
    sizes = {"text": 0, "rodata": 0, "data": 0, "bss": 0}
    for function in program.functions:
        size = sum(
            instruction_length(item)
            for item in function.items
            if isinstance(item, Instruction)
        )
        sizes["text"] += size + (size & 1)
    for section in program.sections:
        cursor = 0
        for item in program.sections.get(section, []):
            if isinstance(item, Label):
                continue
            if isinstance(item, DataItem):
                if item.kind == "word":
                    cursor += cursor & 1
                cursor += item.size()
        sizes[section] = cursor
    return sizes


def _align(value):
    return (value + 1) & ~1


def link(program, plan, extra_symbols=None):
    """Assign addresses per *plan*, assemble, and fit-check.

    Returns a :class:`LinkedProgram`. The software-cache area is
    whatever SRAM remains unallocated (all of it under ``unified``).
    """
    memory_map = fr2355_memory_map(sram_size=plan.sram_size, fram_size=plan.fram_size)
    sram = memory_map.sram
    fram = memory_map.fram
    sizes = measure_sections(program)

    cursors = {"fram": fram.start, "sram": sram.start}
    limits = {
        "fram": fram.end,
        "sram": sram.end - plan.sram_reserve_for_cache,
    }
    bases = {}
    for section in ("text", "rodata", "data", "bss"):
        region = plan.data if section in ("data", "bss") else getattr(plan, section)
        bases[section] = cursors[region]
        cursors[region] = _align(cursors[region] + sizes[section])

    # Extra sections (cache-system metadata and runtime areas) always go
    # to FRAM: the paper keeps both systems' metadata there (§4).
    extra_sections = sorted(
        name for name in sizes if name not in ("text", "rodata", "data", "bss")
    )
    for section in extra_sections:
        bases[section] = cursors["fram"]
        cursors["fram"] = _align(cursors["fram"] + sizes[section])

    # The stack lives after bss in the data region.
    data_region = plan.data
    stack_base = cursors[data_region]
    stack_top = stack_base + plan.stack_size
    cursors[data_region] = stack_top

    for region in ("fram", "sram"):
        if cursors[region] > limits[region]:
            raise FitError(
                f"plan {plan.name!r}: {region} overflow by "
                f"{cursors[region] - limits[region]} bytes "
                f"(used {cursors[region] - (fram.start if region == 'fram' else sram.start)})"
            )

    cache_base = cursors["sram"]
    cache_size = sram.end - cache_base

    layout = SectionLayout(
        text=bases["text"],
        rodata=bases["rodata"],
        data=bases["data"],
        bss=bases["bss"],
        **{section: bases[section] for section in extra_sections},
    )
    symbols = {"__stack_top": stack_top & 0xFFFE}
    symbols.update(extra_symbols or {})
    image = assemble(program, layout, extra_symbols=symbols)

    return LinkedProgram(
        image=image,
        plan=plan,
        layout=layout,
        stack_top=stack_top & 0xFFFE,
        cache_base=cache_base,
        cache_size=cache_size,
        memory_map=memory_map,
        section_sizes=sizes,
        program=program,
    )
