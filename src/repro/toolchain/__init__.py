"""Build pipeline: mini-C source -> assembly -> linked memory image.

The toolchain owns memory placement (the paper's Figure 1 design space:
each of code and data can live in FRAM or SRAM, plus the unified-memory
model and the split-SRAM configuration of §5.5), generates the startup
code, and measures section sizes -- including the DNF ("does not fit")
check the paper applies to the block cache in Figure 7.
"""

from repro.toolchain.linker import (
    FitError,
    LinkedProgram,
    MemoryPlan,
    PLANS,
    link,
    measure_sections,
)
from repro.toolchain.build import add_startup, build_baseline, compile_program
from repro.toolchain.cache import BUILD_CACHE, BuildCache, reset_build_cache
from repro.toolchain.library import (
    LibraryRecoveryError,
    recover_function,
    recover_library,
)

__all__ = [
    "LibraryRecoveryError",
    "recover_function",
    "recover_library",
    "FitError",
    "LinkedProgram",
    "MemoryPlan",
    "PLANS",
    "link",
    "measure_sections",
    "add_startup",
    "build_baseline",
    "compile_program",
    "BUILD_CACHE",
    "BuildCache",
    "reset_build_cache",
]
