"""Library instrumentation: recover compiled code for caching (paper §4).

Embedded programs link precompiled library binaries (math helpers,
vendor drivers) that never pass through the source-level toolchain. The
paper combines ``objdump`` with a script that regenerates parsable
assembly so these functions can join SwapRAM's caching candidates.

This module is that workflow: given an assembled :class:`Image` (or raw
memory bytes plus a symbol table), it disassembles each function,
recovers the information SwapRAM needs -- instruction boundaries,
intra-function branch targets, function extents -- and produces
:class:`~repro.asm.ast.Function` objects indistinguishable from
source-built ones. Exact semantic information (label *names*) is lost,
as the paper notes; positions are what matters and those are recovered
programmatically.
"""

from repro.asm.ast import Function, Label
from repro.asm.disasm import disassemble_range
from repro.isa.instructions import Instruction
from repro.isa.operands import AddressingMode, Sym, imm
from repro.isa.registers import PC


class LibraryRecoveryError(ValueError):
    """The bytes in the function's range do not decode as clean code."""


def _branch_target(instruction):
    """Absolute byte target of a control transfer, or None."""
    if instruction.is_jump:
        return instruction.target if isinstance(instruction.target, int) else None
    if (
        instruction.mnemonic == "MOV"
        and instruction.dst is not None
        and instruction.dst.mode is AddressingMode.REGISTER
        and instruction.dst.register == PC
        and instruction.src.mode is AddressingMode.IMMEDIATE
        and isinstance(instruction.src.value, int)
    ):
        return instruction.src.value
    return None


def recover_function(read_word, name, start, end, symbols=None):
    """Disassemble ``[start, end)`` into a relocatable Function.

    *symbols* (address -> name) names outgoing references (calls,
    absolute data) so the recovered code links against the same program;
    intra-function branch targets become synthetic local labels.
    """
    symbols = symbols or {}
    rows = disassemble_range(read_word, start, end)
    if any(instruction is None for _, instruction, _ in rows):
        raise LibraryRecoveryError(
            f"{name}: data interleaved with code at "
            f"{[hex(a) for a, i, _ in rows if i is None]}"
        )

    # First pass: find every address used as an intra-function target.
    targets = set()
    for address, instruction, _length in rows:
        target = _branch_target(instruction)
        if target is not None and start <= target < end:
            targets.add(target)

    labels = {
        address: f".L{name}_recovered_{index}"
        for index, address in enumerate(sorted(targets))
    }

    function = Function(name, is_library=True)
    for address, instruction, _length in rows:
        if address in labels and address != start:
            function.emit(Label(labels[address]))
        function.emit(_relabel(instruction, labels, symbols, start, end))
    return function


def _relabel(instruction, labels, symbols, start, end):
    """Replace absolute addresses with symbolic references."""
    if instruction.is_jump and isinstance(instruction.target, int):
        target = instruction.target
        if target in labels:
            return Instruction(instruction.mnemonic, target=Sym(labels[target]))
        if target in symbols:
            return Instruction(instruction.mnemonic, target=Sym(symbols[target]))
        return instruction

    def fix_operand(operand):
        if operand is None:
            return None
        value = getattr(operand, "value", None)
        if not isinstance(value, int):
            return operand
        if operand.mode is AddressingMode.IMMEDIATE:
            if start <= value < end and value in labels:
                return imm(Sym(labels[value]))
            if value in symbols:
                return imm(Sym(symbols[value]))
        if operand.mode is AddressingMode.ABSOLUTE and value in symbols:
            from repro.isa.operands import absolute

            return absolute(Sym(symbols[value]))
        return operand

    return Instruction(
        instruction.mnemonic,
        src=fix_operand(instruction.src),
        dst=fix_operand(instruction.dst),
        target=instruction.target,
        byte=instruction.byte,
    )


def recover_library(image, memory, names=None):
    """Recover every (or the named) library function from a loaded image.

    Returns a list of Functions ready to be appended to a fresh Program
    and re-instrumented -- the paper's "integrate that assembly into the
    SwapRAM workflow as with normal source code".
    """
    by_address = {
        info.address: info.name for info in image.functions.values()
    }
    by_address.update(
        {address: sym for sym, address in image.symbols.items() if sym not in image.functions}
    )
    recovered = []
    for info in image.functions.values():
        if names is not None and info.name not in names:
            continue
        recovered.append(
            recover_function(
                memory.read_word, info.name, info.address, info.end, by_address
            )
        )
    return recovered
