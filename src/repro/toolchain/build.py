"""High-level build steps shared by all three systems under test.

``compile_program`` turns mini-C source into assembly and appends the
generated startup code; ``build_baseline`` links it for a memory plan
and returns a ready-to-run :class:`~repro.machine.board.Board` factory.
The SwapRAM and block-cache builders (``repro.core.system`` /
``repro.blockcache.system``) reuse these pieces around their
transformation passes.
"""

from repro.asm.parser import parse_asm
from repro.machine.board import Board
from repro.minic.codegen import compile_c
from repro.toolchain.linker import link

#: Startup code: set up the stack, call main, halt. The call to main is
#: an ordinary call so instrumentation passes can redirect it -- making
#: main itself cacheable -- while ``__start`` never runs again and is
#: blacklisted from caching.
_CRT0 = """
.func __start
    MOV #__stack_top, SP
    CALL #main
    MOV #1, &0x0202
.endfunc
"""


def add_startup(program):
    """Append ``__start`` and make it the entry point."""
    if program.has_function("__start"):
        return program
    crt0 = parse_asm(_CRT0).function("__start")
    crt0.blacklisted = True
    program.functions.insert(0, crt0)
    program.entry = "__start"
    return program


def _compile_uncached(source):
    program = compile_c(source)
    return add_startup(program)


def compile_program(source):
    """mini-C source -> assembly Program with startup code attached.

    Routed through the process-global
    :data:`~repro.toolchain.cache.BUILD_CACHE`: a source seen before
    (this process, or on disk via ``REPRO_BUILD_CACHE``) returns a
    private clone of the cached program without re-compiling.
    """
    from repro.toolchain.cache import BUILD_CACHE

    return BUILD_CACHE.get(source, _compile_uncached)


def build_baseline(source_or_program, plan, frequency_mhz=24, **board_kwargs):
    """Compile (if needed), link for *plan*, and return a loaded Board.

    This is the paper's baseline system: code runs from wherever the
    plan puts it, with only the hardware FRAM read cache helping.
    """
    if isinstance(source_or_program, str):
        program = compile_program(source_or_program)
    else:
        program = add_startup(source_or_program)
    linked = link(program, plan)
    board = Board(
        memory_map=linked.memory_map, frequency_mhz=frequency_mhz, **board_kwargs
    )
    board.load(linked.image)
    board.linked = linked
    return board
