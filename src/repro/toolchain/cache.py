"""A content-addressed build cache: each source compiles once, ever.

``compile_program`` routes every str-source build in the repo through
the process-global :data:`BUILD_CACHE` (the sweep CLI, the bench
snapshot, the fault and difftest harnesses -- everything that takes
mini-C text). The cache keys on a SHA-256 of the source, stores the
pristine post-startup :class:`~repro.asm.ast.Program`, and hands out a
``clone()`` per use -- the link and transformation passes mutate
programs, so the cached master must never escape by reference.

A memory map serves one process; attach a disk directory
(``attach_disk`` or the ``REPRO_BUILD_CACHE`` environment variable) and
compiled programs persist across processes as pickles, so a warm run
performs *zero* compiles (``tests/test_toolchain_cache.py`` asserts
exactly that through the snapshot/fault/difftest entry points). Disk
records carry a format tag and are written atomically; a corrupt or
stale record reads as a miss, never an error.
"""

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro.tracing.runtime import current_recorder
from repro.tracing.span import NULL_SPAN

#: Bumped whenever the pickled Program layout changes; older records
#: are silently treated as misses.
FORMAT = "repro-build-cache/1"

ENV_DISK = "REPRO_BUILD_CACHE"


class BuildCache:
    """Source-hash keyed Program cache with an optional disk layer."""

    def __init__(self, disk=None):
        self.memory = {}
        self.disk = Path(disk) if disk is not None else None
        self.compiles = 0
        self.hits = 0
        self.disk_hits = 0

    @staticmethod
    def key(source):
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def get(self, source, build):
        """Return a private clone of the compiled *source*.

        *build* is the real compile function, called only on a miss.
        """
        key = self.key(source)
        recorder = current_recorder()
        program = self.memory.get(key)
        if program is not None:
            self.hits += 1
            if recorder is not None:
                recorder.instant("build.hit", attrs={"key": key[:16]})
        else:
            program = self._disk_load(key)
            if program is not None:
                self.disk_hits += 1
                if recorder is not None:
                    recorder.instant("build.disk_hit", attrs={"key": key[:16]})
            else:
                self.compiles += 1
                # Cache traffic is warm-state dependent, so every record
                # here is raw (det=False): it feeds the Perfetto export
                # and never the deterministic merged events.
                span = NULL_SPAN
                if recorder is not None:
                    span = recorder.span(
                        "build.compile", det=False, attrs={"key": key[:16]}
                    )
                with span:
                    program = build(source)
                self._disk_store(key, program)
            self.memory[key] = program
        span = NULL_SPAN
        if recorder is not None:
            span = recorder.span("build.clone", det=False, attrs={"key": key[:16]})
        with span:
            return program.clone()

    def attach_disk(self, directory):
        """Persist (and look up) compiled programs under *directory*."""
        self.disk = Path(directory)
        return self

    def clear(self):
        """Forget everything, including the counters (tests)."""
        self.memory.clear()
        self.compiles = self.hits = self.disk_hits = 0

    def stats(self):
        return {
            "compiles": self.compiles,
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "entries": len(self.memory),
        }

    def record_metrics(self, metrics):
        """Mirror the counters into a MetricsRegistry as ``build.*``."""
        metrics.counter("build.compiles").inc(self.compiles)
        metrics.counter("build.cache_hits").inc(self.hits)
        metrics.counter("build.disk_hits").inc(self.disk_hits)

    # -- disk layer --------------------------------------------------------

    def _path(self, key):
        return self.disk / f"{key}.pickle"

    def _disk_load(self, key):
        if self.disk is None:
            return None
        try:
            with open(self._path(key), "rb") as handle:
                record = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(record, dict) or record.get("format") != FORMAT:
            return None
        return record.get("program")

    def _disk_store(self, key, program):
        if self.disk is None:
            return
        self.disk.mkdir(parents=True, exist_ok=True)
        record = {"format": FORMAT, "key": key, "program": program}
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=self.disk, prefix=f".{key}.", delete=False
        )
        try:
            with handle:
                pickle.dump(record, handle)
            os.replace(handle.name, self._path(key))
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass


def _default_cache():
    return BuildCache(disk=os.environ.get(ENV_DISK) or None)


#: The process-global cache behind ``compile_program``.
BUILD_CACHE = _default_cache()


def reset_build_cache():
    """Fresh process-global cache (tests); returns the new instance."""
    global BUILD_CACHE
    BUILD_CACHE = _default_cache()
    return BUILD_CACHE
