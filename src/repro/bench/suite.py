"""Benchmark registry and paper-reported Table 1 reference values."""

from dataclasses import dataclass
from typing import List


@dataclass
class BenchmarkProgram:
    """A generated benchmark: mini-C source plus its expected output."""

    name: str
    key: str
    source: str
    expected: List[int]
    scale: int = 1


#: Paper Table 1 (binary size B, RAM usage B, code/data access ratio).
PAPER_TABLE1 = {
    "stringsearch": ("STR", 12232, 7586, 1.620),
    "dijkstra": ("DIJ", 21956, 8324, 4.679),
    "crc": ("CRC", 1470, 562, 3.448),
    "rc4": ("RC4", 3724, 4444, 1.944),
    "fft": ("FFT", 23014, 4768, 3.749),
    "aes": ("AES", 9608, 674, 3.947),
    "lzfx": ("LZFX", 11085, 10794, 2.656),
    "bitcount": ("BIT", 4344, 720, 2.740),
    "rsa": ("RSA", 6331, 332, 2.530),
}

BENCHMARK_NAMES = list(PAPER_TABLE1)

#: The small/fast subset used by the default test pass and smoke runs;
#: the full set runs under ``pytest --runslow`` and the benchmark
#: harness. One benchmark per behaviour family: table-driven checksum,
#: stream cipher, modular arithmetic, compression.
QUICK_NAMES = ("crc", "rc4", "rsa", "lzfx")


def _module(name):
    import importlib

    return importlib.import_module(f"repro.bench.programs.{name}")


def get_benchmark(name, scale=1):
    """Build benchmark *name* at *scale*; returns a BenchmarkProgram."""
    if name not in PAPER_TABLE1:
        raise KeyError(f"unknown benchmark {name!r} (one of {BENCHMARK_NAMES})")
    source, expected = _module(name).build(scale=scale)
    return BenchmarkProgram(
        name=name,
        key=PAPER_TABLE1[name][0],
        source=source,
        expected=expected,
        scale=scale,
    )
