"""FFT benchmark: Q15 fixed-point radix-2 FFT with analysis stages.

The largest benchmark in Table 1 (23 KB -- float emulation in the
original; Q15 with ``__fixmul`` library calls here). The pipeline per
pass: Hamming-style window, in-place iterative FFT over a const twiddle
table, magnitude estimation (alpha-max beta-min), peak finding, inverse
FFT, and a direct-DFT cross-check of selected bins. One of the four
block-cache DNF binaries.
"""

import math

from repro.bench.datagen import Lcg, c_array

N = 64
LOG2N = 6
Q = 15


def _q15(value):
    scaled = int(round(value * 32767))
    return scaled & 0xFFFF


_TEMPLATE = """
#define N {n}
#define LOG2N {log2n}
#define PASSES {passes}

{input_array}
{cos_array}
{sin_array}
{window_array}

int re[N];
int im[N];
int scratch_re[N];
int scratch_im[N];

unsigned bit_reverse(unsigned value, int bits) {{
    unsigned result = 0;
    int i;
    for (i = 0; i < bits; i++) {{
        result = (result << 1) | (value & 1);
        value = value >> 1;
    }}
    return result;
}}

void load_input(void) {{
    int i;
    for (i = 0; i < N; i++) {{
        re[i] = __fixmul(fft_input[i], fft_window[i]);
        im[i] = 0;
    }}
}}

void reorder(void) {{
    int i;
    for (i = 0; i < N; i++) {{
        int j = (int)bit_reverse(i, LOG2N);
        if (j > i) {{
            int t = re[i];
            re[i] = re[j];
            re[j] = t;
            t = im[i];
            im[i] = im[j];
            im[j] = t;
        }}
    }}
}}

void butterflies(int inverse) {{
    int stage;
    for (stage = 1; stage <= LOG2N; stage++) {{
        int span = 1 << stage;
        int half = span >> 1;
        int step = N / span;
        int start;
        for (start = 0; start < N; start += span) {{
            int k;
            for (k = 0; k < half; k++) {{
                int tw = k * step;
                int wr = fft_cos[tw];
                int wi = fft_sin[tw];
                int a = start + k;
                int b = a + half;
                int tr;
                int ti;
                if (inverse) {{
                    wi = 0 - wi;
                }}
                tr = __fixmul(re[b], wr) - __fixmul(im[b], wi);
                ti = __fixmul(re[b], wi) + __fixmul(im[b], wr);
                /* scale by 1/2 each stage to avoid overflow */
                re[b] = (re[a] - tr) >> 1;
                im[b] = (im[a] - ti) >> 1;
                re[a] = (re[a] + tr) >> 1;
                im[a] = (im[a] + ti) >> 1;
            }}
        }}
    }}
}}

void fft(int inverse) {{
    reorder();
    butterflies(inverse);
}}

int magnitude_estimate(int real, int imag) {{
    int abs_re = real < 0 ? 0 - real : real;
    int abs_im = imag < 0 ? 0 - imag : imag;
    int big = abs_re > abs_im ? abs_re : abs_im;
    int small = abs_re > abs_im ? abs_im : abs_re;
    /* alpha-max beta-min: |z| ~ max + 3/8 min */
    return big + ((small >> 2) + (small >> 3));
}}

int peak_bin(void) {{
    int best = 0;
    int best_mag = 0;
    int i;
    for (i = 0; i < N / 2; i++) {{
        int mag = magnitude_estimate(re[i], im[i]);
        scratch_re[i] = mag;
        if (mag > best_mag) {{
            best_mag = mag;
            best = i;
        }}
    }}
    return best;
}}

void dft_bin(int k, int *out_re, int *out_im) {{
    int sum_re = 0;
    int sum_im = 0;
    int i;
    for (i = 0; i < N; i++) {{
        int angle = (i * k) % N;
        int sample = __fixmul(fft_input[i], fft_window[i]);
        sum_re += __fixmul(sample, fft_cos[angle]) >> LOG2N;
        sum_im += __fixmul(sample, fft_sin[angle]) >> LOG2N;
    }}
    *out_re = sum_re;
    *out_im = sum_im;
}}

int close_enough(int a, int b) {{
    int d = a - b;
    if (d < 0) {{
        d = 0 - d;
    }}
    return d <= 320;
}}

int main(void) {{
    unsigned acc = 0;
    unsigned pass;
    for (pass = 0; pass < PASSES; pass++) {{
        int peak;
        int check_re;
        int check_im;
        int i;
        load_input();
        fft(0);
        peak = peak_bin();
        acc = (acc + peak) & 0xFFFF;
        for (i = 0; i < N / 2; i += 7) {{
            acc = (acc ^ (scratch_re[i] & 0xFFFF)) & 0xFFFF;
        }}
        /* cross-check the peak bin against a direct DFT */
        dft_bin(peak, &check_re, &check_im);
        if (!close_enough(check_re, re[peak]) || !close_enough(check_im, im[peak])) {{
            __debug_out(0xDEAD);
            __debug_out(peak);
            return 1;
        }}
        /* round trip: inverse FFT should recover the windowed input */
        fft(1);
        for (i = 0; i < N; i += 5) {{
            int expect = __fixmul(fft_input[i], fft_window[i]) >> LOG2N;
            if (!close_enough(re[i], expect)) {{
                __debug_out(0xBEEF);
                __debug_out(i);
                return 1;
            }}
        }}
        acc = (acc + pass) & 0xFFFF;
    }}
    __debug_out(acc);
    return 0;
}}
"""


def _reference(samples, window, cos_table, sin_table, passes):
    """Mirror of the device pipeline with 16-bit wrap semantics."""
    acc = 0
    for pass_index in range(passes):
        re = [_fixmul_raw(samples[i], window[i]) for i in range(N)]
        im = [0] * N
        for i in range(N):
            j = int(format(i, f"0{LOG2N}b")[::-1], 2)
            if j > i:
                re[i], re[j] = re[j], re[i]
                im[i], im[j] = im[j], im[i]
        for stage in range(1, LOG2N + 1):
            span = 1 << stage
            half = span >> 1
            step = N // span
            for start in range(0, N, span):
                for k in range(half):
                    tw = k * step
                    wr, wi = cos_table[tw], sin_table[tw]
                    a, b = start + k, start + k + half
                    tr = _wrap(_fixmul_raw(re[b], wr) - _fixmul_raw(im[b], wi))
                    ti = _wrap(_fixmul_raw(re[b], wi) + _fixmul_raw(im[b], wr))
                    re[b] = _sar(re[a] - tr)
                    im[b] = _sar(im[a] - ti)
                    re[a] = _sar(re[a] + tr)
                    im[a] = _sar(im[a] + ti)
        best, best_mag = 0, 0
        mags = []
        for i in range(N // 2):
            mag = _magnitude(re[i], im[i])
            mags.append(mag)
            if mag > best_mag:
                best_mag, best = mag, i
        acc = (acc + best) & 0xFFFF
        for i in range(0, N // 2, 7):
            acc = (acc ^ (mags[i] & 0xFFFF)) & 0xFFFF
        acc = (acc + pass_index) & 0xFFFF
    return acc


def _wrap(value):
    return ((value + 0x8000) & 0xFFFF) - 0x8000


def _sar(value):
    return _wrap(value) >> 1


def _fixmul_raw(a, b):
    """Q15 multiply exactly as ``__fixmul`` computes it.

    The assembly helper works on magnitudes and re-applies the sign, so
    negative products truncate toward zero (Python's ``>>`` would floor).
    """
    a, b = _wrap(a), _wrap(b)
    sign = (a < 0) != (b < 0)
    magnitude = (abs(a) * abs(b)) >> Q
    return _wrap(-magnitude if sign else magnitude)


def _magnitude(real, imag):
    abs_re = -_wrap(real) if _wrap(real) < 0 else _wrap(real)
    abs_im = -_wrap(imag) if _wrap(imag) < 0 else _wrap(imag)
    big, small = (abs_re, abs_im) if abs_re > abs_im else (abs_im, abs_re)
    return _wrap(big + ((small >> 2) + (small >> 3)))


def build(scale=1):
    passes = 1 * scale
    generator = Lcg(0xFF7)
    # Two tones plus noise, in Q15.
    samples = []
    for i in range(N):
        value = (
            0.45 * math.sin(2 * math.pi * 5 * i / N)
            + 0.25 * math.sin(2 * math.pi * 11 * i / N)
            + 0.04 * ((generator.next_byte() / 255.0) - 0.5)
        )
        samples.append(_q15(value))
    window = [_q15(0.54 - 0.46 * math.cos(2 * math.pi * i / (N - 1))) for i in range(N)]
    cos_table = [_q15(math.cos(2 * math.pi * k / N) * 0.9999) for k in range(N)]
    sin_table = [_q15(math.sin(2 * math.pi * k / N) * 0.9999) for k in range(N)]

    source = _TEMPLATE.format(
        n=N,
        log2n=LOG2N,
        passes=passes,
        input_array=c_array("int", "fft_input", samples),
        cos_array=c_array("int", "fft_cos", cos_table),
        sin_array=c_array("int", "fft_sin", sin_table),
        window_array=c_array("int", "fft_window", window),
    )
    signed_samples = [_wrap(s) for s in samples]
    signed_window = [_wrap(w) for w in window]
    signed_cos = [_wrap(c) for c in cos_table]
    signed_sin = [_wrap(s) for s in sin_table]
    expected = _reference(signed_samples, signed_window, signed_cos, signed_sin, passes)
    return source, [expected]
