"""Dijkstra benchmark: shortest paths over a dense adjacency matrix.

Three single-source implementations -- linear-scan Dijkstra (MiBench's
form), a binary-heap Dijkstra, and Bellman-Ford -- cross-checked
against each other per source. Register-heavy scan loops give this
benchmark the suite's highest code/data access ratio (4.679 in
Table 1), and it is one of the four binaries the block cache cannot
fit (DNF in Figure 7).
"""

from repro.bench.datagen import Lcg, c_array

INF = 0x7FFF

_TEMPLATE = """
#define NNODES {nnodes}
#define SOURCES {sources}
#define INF 0x7FFF

{adj_array}

#define HEAPCAP (NNODES * NNODES)

unsigned dist_a[NNODES];
unsigned dist_b[NNODES];
unsigned dist_c[NNODES];
unsigned visited[NNODES];
int heap_node[HEAPCAP];
unsigned heap_key[HEAPCAP];
int heap_size;

unsigned edge(int from, int to) {{
    return adj[from * NNODES + to];
}}

void init_dist(unsigned *dist, int source) {{
    int i;
    for (i = 0; i < NNODES; i++) {{
        dist[i] = INF;
        visited[i] = 0;
    }}
    dist[source] = 0;
}}

int extract_min_linear(unsigned *dist) {{
    int best = -1;
    unsigned best_key = INF;
    int i;
    for (i = 0; i < NNODES; i++) {{
        if (!visited[i] && dist[i] < best_key) {{
            best = i;
            best_key = dist[i];
        }}
    }}
    return best;
}}

void relax_all(unsigned *dist, int node) {{
    int i;
    for (i = 0; i < NNODES; i++) {{
        unsigned weight = edge(node, i);
        if (weight != INF && dist[node] != INF) {{
            unsigned cand = dist[node] + weight;
            if (cand < dist[i]) {{
                dist[i] = cand;
            }}
        }}
    }}
}}

void dijkstra_linear(int source) {{
    int round;
    init_dist(dist_a, source);
    for (round = 0; round < NNODES; round++) {{
        int node = extract_min_linear(dist_a);
        if (node < 0) {{
            return;
        }}
        visited[node] = 1;
        relax_all(dist_a, node);
    }}
}}

/* ---- binary-heap variant (lazy insertion, no decrease-key) ---- */

void heap_push(int node, unsigned key) {{
    int index = heap_size++;
    heap_node[index] = node;
    heap_key[index] = key;
    while (index > 0) {{
        int parent = (index - 1) / 2;
        int node_tmp;
        unsigned key_tmp;
        if (heap_key[parent] <= heap_key[index]) {{
            return;
        }}
        node_tmp = heap_node[parent];
        key_tmp = heap_key[parent];
        heap_node[parent] = heap_node[index];
        heap_key[parent] = heap_key[index];
        heap_node[index] = node_tmp;
        heap_key[index] = key_tmp;
        index = parent;
    }}
}}

int heap_pop(void) {{
    int top = heap_node[0];
    int index = 0;
    heap_size--;
    heap_node[0] = heap_node[heap_size];
    heap_key[0] = heap_key[heap_size];
    while (1) {{
        int left = 2 * index + 1;
        int smallest = index;
        int node_tmp;
        unsigned key_tmp;
        if (left < heap_size && heap_key[left] < heap_key[smallest]) {{
            smallest = left;
        }}
        if (left + 1 < heap_size && heap_key[left + 1] < heap_key[smallest]) {{
            smallest = left + 1;
        }}
        if (smallest == index) {{
            return top;
        }}
        node_tmp = heap_node[smallest];
        key_tmp = heap_key[smallest];
        heap_node[smallest] = heap_node[index];
        heap_key[smallest] = heap_key[index];
        heap_node[index] = node_tmp;
        heap_key[index] = key_tmp;
        index = smallest;
    }}
}}

void dijkstra_heap(int source) {{
    int i;
    init_dist(dist_b, source);
    heap_size = 0;
    heap_push(source, 0);
    while (heap_size > 0) {{
        int node = heap_pop();
        unsigned base;
        if (visited[node]) {{
            continue;
        }}
        visited[node] = 1;
        base = dist_b[node];
        for (i = 0; i < NNODES; i++) {{
            unsigned weight = edge(node, i);
            if (weight != INF) {{
                unsigned cand = base + weight;
                if (cand < dist_b[i]) {{
                    dist_b[i] = cand;
                    heap_push(i, cand);
                }}
            }}
        }}
    }}
}}

/* ---- Bellman-Ford cross-check ---- */

void bellman_ford(int source) {{
    int round;
    int from;
    int to;
    init_dist(dist_c, source);
    for (round = 0; round < NNODES - 1; round++) {{
        int changed = 0;
        for (from = 0; from < NNODES; from++) {{
            unsigned base = dist_c[from];
            if (base == INF) {{
                continue;
            }}
            for (to = 0; to < NNODES; to++) {{
                unsigned weight = edge(from, to);
                if (weight != INF && base + weight < dist_c[to]) {{
                    dist_c[to] = base + weight;
                    changed = 1;
                }}
            }}
        }}
        if (!changed) {{
            break;
        }}
    }}
}}

unsigned fold_distances(const unsigned *dist, unsigned acc, int source) {{
    int i;
    for (i = 0; i < NNODES; i++) {{
        acc = (acc + dist[i]) & 0xFFFF;
    }}
    return (acc ^ (source + 1)) & 0xFFFF;
}}

int main(void) {{
    /* Run each implementation as its own phase over all sources (as
       MiBench does) and cross-check the accumulated results. */
    unsigned acc_a = 0;
    unsigned acc_b = 0;
    unsigned acc_c = 0;
    int source;
    for (source = 0; source < SOURCES; source++) {{
        dijkstra_linear(source);
        acc_a = fold_distances(dist_a, acc_a, source);
    }}
    for (source = 0; source < SOURCES; source++) {{
        dijkstra_heap(source);
        acc_b = fold_distances(dist_b, acc_b, source);
    }}
    for (source = 0; source < SOURCES; source++) {{
        bellman_ford(source);
        acc_c = fold_distances(dist_c, acc_c, source);
    }}
    if (acc_a != acc_b || acc_a != acc_c) {{
        __debug_out(0xDEAD);
        return 1;
    }}
    __debug_out(acc_a);
    return 0;
}}
"""


def _make_graph(nnodes, generator):
    """Sparse-ish directed graph as a dense matrix (INF = no edge)."""
    matrix = [INF] * (nnodes * nnodes)
    for from_node in range(nnodes):
        matrix[from_node * nnodes + from_node] = 0
        for to_node in range(nnodes):
            if to_node != from_node and generator.next_byte() < 96:
                matrix[from_node * nnodes + to_node] = 1 + generator.next_word() % 90
    return matrix


def _reference(matrix, nnodes, sources):
    acc = 0
    for source in range(sources):
        dist = [INF] * nnodes
        dist[source] = 0
        visited = [False] * nnodes
        for _ in range(nnodes):
            best, best_key = -1, INF
            for i in range(nnodes):
                if not visited[i] and dist[i] < best_key:
                    best, best_key = i, dist[i]
            if best < 0:
                break
            visited[best] = True
            for i in range(nnodes):
                weight = matrix[best * nnodes + i]
                if weight != INF and dist[best] != INF:
                    cand = dist[best] + weight
                    if cand < dist[i]:
                        dist[i] = cand
        for i in range(nnodes):
            acc = (acc + dist[i]) & 0xFFFF
        acc = (acc ^ (source + 1)) & 0xFFFF
    return acc


def build(scale=1):
    nnodes = 14
    sources = min(3 * scale, nnodes)
    generator = Lcg(0xD1D1)
    matrix = _make_graph(nnodes, generator)
    source_text = _TEMPLATE.format(
        nnodes=nnodes,
        sources=sources,
        adj_array=c_array("unsigned", "adj", matrix),
    )
    return source_text, [_reference(matrix, nnodes, sources)]
