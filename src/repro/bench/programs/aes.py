"""AES benchmark: AES-128 encryption in CBC-style chaining.

The paper's thrashing outlier (§5.4): the round functions (sub_bytes,
shift_rows, mix_columns, add_round_key, xtime) call each other in a
tight rotation whose combined footprint exceeds the SRAM cache, so the
circular queue keeps evicting code that is about to run again -- and
active ancestors force NVM-execution fallbacks. The Python reference
implementation asserts the FIPS-197 test vector at build time, so the
device checksum is validated against a known-good AES.
"""

from repro.bench.datagen import Lcg, c_array

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

#: FIPS-197 appendix test vector.
_FIPS_KEY = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
    0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
]
_FIPS_PLAIN = [
    0x6B, 0xC1, 0xBE, 0xE2, 0x2E, 0x40, 0x9F, 0x96,
    0xE9, 0x3D, 0x7E, 0x11, 0x73, 0x93, 0x17, 0x2A,
]
_FIPS_CIPHER = [
    0x3A, 0xD7, 0x7B, 0xB4, 0x0D, 0x7A, 0x36, 0x60,
    0xA8, 0x9E, 0xCA, 0xF3, 0x24, 0x66, 0xEF, 0x97,
]

_TEMPLATE = """
#define BLOCKS {blocks}
#define PASSES {passes}

{sbox_array}
{rcon_array}
{key_array}
{plain_array}

unsigned char round_keys[176];
unsigned char state[16];
unsigned char chain[16];

void copy16(unsigned char *dst, const unsigned char *src) {{
    int i;
    for (i = 0; i < 16; i++) {{
        dst[i] = src[i];
    }}
}}

unsigned char mix_one(unsigned char value, unsigned char next, unsigned char all) {{
    /* xtime() folded in, as MiBench's macro version does */
    unsigned pair = value ^ next;
    unsigned wide = pair << 1;
    if (pair & 0x80) {{
        wide = wide ^ 0x1B;
    }}
    return (unsigned char)((value ^ all ^ wide) & 0xFF);
}}

void key_expand(const unsigned char *key) {{
    int i;
    unsigned char temp[4];
    for (i = 0; i < 16; i++) {{
        round_keys[i] = key[i];
    }}
    for (i = 4; i < 44; i++) {{
        int base = 4 * i;
        int j;
        for (j = 0; j < 4; j++) {{
            temp[j] = round_keys[base - 4 + j];
        }}
        if (i % 4 == 0) {{
            unsigned char rotated = temp[0];
            temp[0] = aes_sbox[temp[1]] ^ aes_rcon[i / 4 - 1];
            temp[1] = aes_sbox[temp[2]];
            temp[2] = aes_sbox[temp[3]];
            temp[3] = aes_sbox[rotated];
        }}
        for (j = 0; j < 4; j++) {{
            round_keys[base + j] = round_keys[base - 16 + j] ^ temp[j];
        }}
    }}
}}

void add_round_key(int round) {{
    int i;
    int base = 16 * round;
    for (i = 0; i < 16; i++) {{
        state[i] = state[i] ^ round_keys[base + i];
    }}
}}

void sub_bytes(void) {{
    int i;
    for (i = 0; i < 16; i++) {{
        state[i] = aes_sbox[state[i]];
    }}
}}

void rotate_row(int row) {{
    int t = state[row];
    state[row] = state[row + 4];
    state[row + 4] = state[row + 8];
    state[row + 8] = state[row + 12];
    state[row + 12] = (unsigned char)t;
}}

void shift_rows(void) {{
    int row;
    int times;
    for (row = 1; row < 4; row++) {{
        for (times = 0; times < row; times++) {{
            rotate_row(row);
        }}
    }}
}}

void mix_columns(void) {{
    int col;
    for (col = 0; col < 4; col++) {{
        int base = 4 * col;
        unsigned char a0 = state[base];
        unsigned char a1 = state[base + 1];
        unsigned char a2 = state[base + 2];
        unsigned char a3 = state[base + 3];
        unsigned char all = a0 ^ a1 ^ a2 ^ a3;
        state[base] = mix_one(a0, a1, all);
        state[base + 1] = mix_one(a1, a2, all);
        state[base + 2] = mix_one(a2, a3, all);
        state[base + 3] = mix_one(a3, a0, all);
    }}
}}

void aes_encrypt_state(void) {{
    int round;
    add_round_key(0);
    for (round = 1; round < 10; round++) {{
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }}
    sub_bytes();
    shift_rows();
    add_round_key(10);
}}

int main(void) {{
    unsigned acc = 0;
    unsigned pass;
    int i;
    key_expand(aes_key);
    for (pass = 0; pass < PASSES; pass++) {{
        for (i = 0; i < 16; i++) {{
            chain[i] = (unsigned char)(pass & 0xFF);
        }}
        for (i = 0; i < BLOCKS; i++) {{
            int j;
            for (j = 0; j < 16; j++) {{
                state[j] = aes_plain[16 * i + j] ^ chain[j];
            }}
            aes_encrypt_state();
            copy16(chain, state);
            acc = (acc + state[0] + (state[15] << 8)) & 0xFFFF;
        }}
        acc = (acc ^ (pass + 1)) & 0xFFFF;
    }}
    __debug_out(acc);
    return 0;
}}
"""


def _xtime(value):
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _encrypt_block(round_keys, block):
    state = list(block)

    def add_round_key(round_index):
        for i in range(16):
            state[i] ^= round_keys[16 * round_index + i]

    def sub_bytes():
        for i in range(16):
            state[i] = _SBOX[state[i]]

    def shift_rows():
        s = state
        s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
        s[2], s[10] = s[10], s[2]
        s[6], s[14] = s[14], s[6]
        s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]

    def mix_columns():
        for col in range(4):
            base = 4 * col
            a = state[base : base + 4]
            total = a[0] ^ a[1] ^ a[2] ^ a[3]
            state[base] ^= total ^ _xtime(a[0] ^ a[1])
            state[base + 1] ^= total ^ _xtime(a[1] ^ a[2])
            state[base + 2] ^= total ^ _xtime(a[2] ^ a[3])
            state[base + 3] ^= total ^ _xtime(a[3] ^ a[0])

    add_round_key(0)
    for round_index in range(1, 10):
        sub_bytes()
        shift_rows()
        mix_columns()
        add_round_key(round_index)
    sub_bytes()
    shift_rows()
    add_round_key(10)
    return state


def _key_expand(key):
    words = list(key)
    for i in range(4, 44):
        temp = words[4 * i - 4 : 4 * i]
        if i % 4 == 0:
            temp = [
                _SBOX[temp[1]] ^ _RCON[i // 4 - 1],
                _SBOX[temp[2]],
                _SBOX[temp[3]],
                _SBOX[temp[0]],
            ]
        for j in range(4):
            words.append(words[4 * (i - 4) + j] ^ temp[j])
    return words


def _reference(key, plain, blocks, passes):
    round_keys = _key_expand(key)
    assert _encrypt_block(_key_expand(_FIPS_KEY), _FIPS_PLAIN) == _FIPS_CIPHER
    acc = 0
    for pass_index in range(passes):
        chain = [pass_index & 0xFF] * 16
        for block_index in range(blocks):
            block = [
                plain[16 * block_index + j] ^ chain[j] for j in range(16)
            ]
            chain = _encrypt_block(round_keys, block)
            acc = (acc + chain[0] + ((chain[15] << 8) & 0xFFFF)) & 0xFFFF
        acc = (acc ^ (pass_index + 1)) & 0xFFFF
    return acc


def build(scale=1):
    blocks = 4
    passes = 2 * scale
    generator = Lcg(0xAE5)
    key = generator.bytes(16)
    plain = generator.bytes(16 * blocks)
    source = _TEMPLATE.format(
        blocks=blocks,
        passes=passes,
        sbox_array=c_array("unsigned char", "aes_sbox", _SBOX),
        rcon_array=c_array("unsigned char", "aes_rcon", _RCON),
        key_array=c_array("unsigned char", "aes_key", key),
        plain_array=c_array("unsigned char", "aes_plain", plain),
    )
    return source, [_reference(key, plain, blocks, passes)]
