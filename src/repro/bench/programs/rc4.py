"""RC4 benchmark: key schedule + keystream encryption of a buffer.

Byte-oriented state machine over a 256-byte S array in RAM -- the
second-lowest code/data ratio in Table 1 (1.944) because nearly every
operation is a data byte access.
"""

from repro.bench.datagen import Lcg, c_array

_TEMPLATE = """
#define KEYLEN {keylen}
#define MSGLEN {msglen}
#define ROUNDS {rounds}

{key_array}
{msg_array}

unsigned char rc4_state[256];
unsigned char workbuf[MSGLEN];

void rc4_init(void) {{
    int i;
    int j = 0;
    for (i = 0; i < 256; i++) {{
        rc4_state[i] = (unsigned char)i;
    }}
    for (i = 0; i < 256; i++) {{
        int t;
        j = (j + rc4_state[i] + rc4_key[i % KEYLEN]) & 0xFF;
        t = rc4_state[i];
        rc4_state[i] = rc4_state[j];
        rc4_state[j] = (unsigned char)t;
    }}
}}

unsigned rc4_crypt(void) {{
    int i = 0;
    int j = 0;
    int k;
    unsigned check = 0;
    for (k = 0; k < MSGLEN; k++) {{
        int t;
        unsigned key;
        i = (i + 1) & 0xFF;
        j = (j + rc4_state[i]) & 0xFF;
        t = rc4_state[i];
        rc4_state[i] = rc4_state[j];
        rc4_state[j] = (unsigned char)t;
        key = rc4_state[(rc4_state[i] + rc4_state[j]) & 0xFF];
        workbuf[k] = workbuf[k] ^ key;
        check = (check + workbuf[k]) & 0xFFFF;
    }}
    return check;
}}

int main(void) {{
    unsigned acc = 0;
    unsigned round;
    int k;
    for (k = 0; k < MSGLEN; k++) {{
        workbuf[k] = rc4_msg[k];
    }}
    for (round = 0; round < ROUNDS; round++) {{
        rc4_init();
        acc = acc ^ rc4_crypt();
        acc = (acc + round) & 0xFFFF;
    }}
    __debug_out(acc);
    __debug_out(workbuf[0] | (workbuf[MSGLEN - 1] << 8));
    return 0;
}}
"""


def _reference(key, message, rounds):
    work = list(message)
    acc = 0
    for round_index in range(rounds):
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        i = j = 0
        check = 0
        for k in range(len(work)):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            stream = state[(state[i] + state[j]) & 0xFF]
            work[k] ^= stream
            check = (check + work[k]) & 0xFFFF
        acc = ((acc ^ check) + round_index) & 0xFFFF
    return acc, work


def build(scale=1):
    keylen = 16
    msglen = 96
    rounds = 2 * scale
    generator = Lcg(0x4C4)
    key = generator.bytes(keylen)
    message = generator.bytes(msglen)
    source = _TEMPLATE.format(
        keylen=keylen,
        msglen=msglen,
        rounds=rounds,
        key_array=c_array("unsigned char", "rc4_key", key),
        msg_array=c_array("unsigned char", "rc4_msg", message),
    )
    acc, work = _reference(key, message, rounds)
    return source, [acc, work[0] | (work[-1] << 8)]
