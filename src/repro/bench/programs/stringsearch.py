"""Stringsearch benchmark: pattern matching over an embedded corpus.

Four searchers -- Boyer-Moore-Horspool (MiBench's core), Knuth-Morris-
Pratt, Sunday quick-search and Rabin-Karp -- each count occurrences of
every pattern and are cross-checked. Byte loads dominate, producing the suite's lowest
code/data access ratio (1.620 in Table 1); like the paper's version it
is too large for the block cache (DNF).
"""

from repro.bench.datagen import Lcg, c_array, printable_text

_TEMPLATE = """
#define TEXTLEN {textlen}
#define NPATTERNS {npatterns}
#define MAXPAT {maxpat}
#define PASSES {passes}

{text_array}
{patterns_array}
{offsets_array}
{lengths_array}

unsigned char bad_shift[256];
unsigned char sunday_shift[256];
int kmp_fail[MAXPAT];

int match_at(const unsigned char *pattern, int patlen, int start) {{
    int i = 0;
    while (i < patlen && corpus[start + i] == pattern[i]) {{
        i++;
    }}
    return i == patlen;
}}

int search_sunday(const unsigned char *pattern, int patlen) {{
    int count = 0;
    int pos = 0;
    int limit = TEXTLEN - patlen;
    int i;
    for (i = 0; i < 256; i++) {{
        sunday_shift[i] = (unsigned char)(patlen + 1);
    }}
    for (i = 0; i < patlen; i++) {{
        sunday_shift[pattern[i]] = (unsigned char)(patlen - i);
    }}
    while (pos <= limit) {{
        if (match_at(pattern, patlen, pos)) {{
            count++;
        }}
        if (pos + patlen >= TEXTLEN) {{
            break;
        }}
        pos += sunday_shift[corpus[pos + patlen]];
    }}
    return count;
}}

unsigned hash_mul31(unsigned value) {{
    return ((value << 5) - value) & 0xFFFF;
}}

int search_rabin_karp(const unsigned char *pattern, int patlen) {{
    int count = 0;
    unsigned target = 0;
    unsigned rolling = 0;
    unsigned msb_weight = 1;
    int i;
    for (i = 0; i < patlen - 1; i++) {{
        msb_weight = hash_mul31(msb_weight);
    }}
    for (i = 0; i < patlen; i++) {{
        target = (hash_mul31(target) + pattern[i]) & 0xFFFF;
        rolling = (hash_mul31(rolling) + corpus[i]) & 0xFFFF;
    }}
    for (i = 0; i + patlen <= TEXTLEN; i++) {{
        if (rolling == target && match_at(pattern, patlen, i)) {{
            count++;
        }}
        if (i + patlen < TEXTLEN) {{
            unsigned gone = (corpus[i] * msb_weight) & 0xFFFF;
            rolling = (hash_mul31(rolling - gone) + corpus[i + patlen]) & 0xFFFF;
        }}
    }}
    return count;
}}

void bmh_prepare(const unsigned char *pattern, int patlen) {{
    int i;
    for (i = 0; i < 256; i++) {{
        bad_shift[i] = (unsigned char)patlen;
    }}
    for (i = 0; i < patlen - 1; i++) {{
        bad_shift[pattern[i]] = (unsigned char)(patlen - 1 - i);
    }}
}}

int search_bmh(const unsigned char *pattern, int patlen) {{
    int count = 0;
    int pos = 0;
    int limit = TEXTLEN - patlen;
    bmh_prepare(pattern, patlen);
    while (pos <= limit) {{
        int i = patlen - 1;
        while (i >= 0 && corpus[pos + i] == pattern[i]) {{
            i--;
        }}
        if (i < 0) {{
            count++;
            pos++;
        }} else {{
            pos += bad_shift[corpus[pos + patlen - 1]];
        }}
    }}
    return count;
}}

void kmp_prepare(const unsigned char *pattern, int patlen) {{
    int k = 0;
    int i;
    kmp_fail[0] = 0;
    for (i = 1; i < patlen; i++) {{
        while (k > 0 && pattern[k] != pattern[i]) {{
            k = kmp_fail[k - 1];
        }}
        if (pattern[k] == pattern[i]) {{
            k++;
        }}
        kmp_fail[i] = k;
    }}
}}

int search_kmp(const unsigned char *pattern, int patlen) {{
    int count = 0;
    int k = 0;
    int i;
    kmp_prepare(pattern, patlen);
    for (i = 0; i < TEXTLEN; i++) {{
        while (k > 0 && pattern[k] != corpus[i]) {{
            k = kmp_fail[k - 1];
        }}
        if (pattern[k] == corpus[i]) {{
            k++;
        }}
        if (k == patlen) {{
            count++;
            k = kmp_fail[k - 1];
        }}
    }}
    return count;
}}

unsigned corpus_stats(void) {{
    /* Word count, longest run of one character, and a vowel tally --
       the kind of scan MiBench's stringsearch driver performs. */
    unsigned words = 0;
    unsigned longest = 0;
    unsigned run = 0;
    unsigned vowels = 0;
    int in_word = 0;
    int i;
    for (i = 0; i < TEXTLEN; i++) {{
        unsigned ch = corpus[i];
        if (ch == ' ') {{
            in_word = 0;
        }} else {{
            if (!in_word) {{
                words++;
            }}
            in_word = 1;
        }}
        if (i > 0 && corpus[i] == corpus[i - 1]) {{
            run++;
            if (run > longest) {{
                longest = run;
            }}
        }} else {{
            run = 0;
        }}
        if (ch == 'a' || ch == 'e' || ch == 'i' || ch == 'o' || ch == 'u') {{
            vowels++;
        }}
    }}
    return (words + (longest << 8) + vowels) & 0xFFFF;
}}

int main(void) {{
    unsigned acc = 0;
    unsigned pass;
    acc = corpus_stats();
    for (pass = 0; pass < PASSES; pass++) {{
        int p;
        for (p = 0; p < NPATTERNS; p++) {{
            const unsigned char *pattern = patterns + pat_offset[p];
            int patlen = pat_length[p];
            int a = search_bmh(pattern, patlen);
            int b = search_kmp(pattern, patlen);
            int c = search_sunday(pattern, patlen);
            int d = a;
            if ((p & 3) == 0) {{
                /* Rabin-Karp is the costly cross-check: sample it */
                d = search_rabin_karp(pattern, patlen);
            }}
            if (a != b || a != c || a != d) {{
                __debug_out(0xDEAD);
                __debug_out(p);
                return 1;
            }}
            acc = (acc + a * (p + 1)) & 0xFFFF;
        }}
        acc = (acc ^ (pass + 0x51)) & 0xFFFF;
    }}
    __debug_out(acc);
    return 0;
}}
"""

_WORDS = ["sensor", "energy", "cache", "swap", "ram", "nvm", "edge", "node"]


def _corpus_stats(text):
    words = longest = run = vowels = 0
    in_word = False
    for i, ch in enumerate(text):
        if ch == ord(" "):
            in_word = False
        else:
            if not in_word:
                words += 1
            in_word = True
        if i > 0 and text[i] == text[i - 1]:
            run += 1
            longest = max(longest, run)
        else:
            run = 0
        if ch in (ord("a"), ord("e"), ord("i"), ord("o"), ord("u")):
            vowels += 1
    return (words + (longest << 8) + vowels) & 0xFFFF


def _reference(text, patterns, passes):
    blob = bytes(text)
    acc = _corpus_stats(text)
    for pass_index in range(passes):
        for index, pattern in enumerate(patterns):
            needle = bytes(pattern)
            count = 0
            start = 0
            while True:
                found = blob.find(needle, start)
                if found < 0:
                    break
                count += 1
                start = found + 1
            acc = (acc + count * (index + 1)) & 0xFFFF
        acc = (acc ^ (pass_index + 0x51)) & 0xFFFF
    return acc


def build(scale=1):
    textlen = 512
    passes = 1 * scale
    generator = Lcg(0x57A)
    text = printable_text(generator, textlen, _WORDS)
    patterns = [[ord(c) for c in word] for word in _WORDS]
    patterns.append([ord(c) for c in "zzq"])  # never matches
    flat = []
    offsets = []
    lengths = []
    for pattern in patterns:
        offsets.append(len(flat))
        lengths.append(len(pattern))
        flat.extend(pattern)
    maxpat = max(lengths) + 1
    source = _TEMPLATE.format(
        textlen=textlen,
        npatterns=len(patterns),
        maxpat=maxpat,
        passes=passes,
        text_array=c_array("unsigned char", "corpus", text),
        patterns_array=c_array("unsigned char", "patterns", flat),
        offsets_array=c_array("int", "pat_offset", offsets),
        lengths_array=c_array("int", "pat_length", lengths),
    )
    return source, [_reference(text, patterns, passes)]
