"""LZFX benchmark: LZF-style compression round trip.

Hash-table driven LZ77 compressor with literal runs and two/three-byte
back-references, plus the matching decompressor. Each pass compresses
the corpus, decompresses it, verifies the round trip byte-for-byte and
checksums the compressed stream. The most RAM-hungry benchmark in
Table 1 (10794 B) and a block-cache DNF.
"""

from repro.bench.datagen import Lcg, c_array

HASH_BITS = 8
HASH_SIZE = 1 << HASH_BITS
MAX_LIT = 32
MAX_OFF = 0x1FFF
MIN_MATCH = 3


_TEMPLATE = """
#define INLEN {inlen}
#define OUTCAP {outcap}
#define PASSES {passes}
#define HASH_SIZE {hash_size}
#define MAX_LIT {max_lit}
#define MAX_OFF {max_off}

{input_array}

unsigned char comp[OUTCAP];
unsigned char back[INLEN];
int hash_tab[HASH_SIZE];

int hash3(int pos) {{
    unsigned h = (lz_input[pos] << 8) ^ (lz_input[pos + 1] << 4) ^ lz_input[pos + 2];
    return (int)(h & (HASH_SIZE - 1));
}}

int match_length(int a, int b, int limit) {{
    int len = 0;
    while (len < limit && lz_input[a + len] == lz_input[b + len]) {{
        len++;
    }}
    return len;
}}

int lz_compress(void) {{
    int out = 0;
    int pos = 0;
    int lit_start = 0;
    int i;
    for (i = 0; i < HASH_SIZE; i++) {{
        hash_tab[i] = -1;
    }}
    while (pos + 2 < INLEN) {{
        int slot = hash3(pos);
        int candidate = hash_tab[slot];
        int len = 0;
        hash_tab[slot] = pos;
        if (candidate >= 0 && pos - candidate <= MAX_OFF) {{
            int limit = INLEN - pos;
            if (limit > 264) {{
                limit = 264;
            }}
            len = match_length(candidate, pos, limit);
        }}
        if (len >= 3) {{
            int offset = pos - candidate - 1;
            int run = pos - lit_start;
            /* flush pending literals */
            while (run > 0) {{
                int chunk = run > MAX_LIT ? MAX_LIT : run;
                int j;
                comp[out++] = (unsigned char)(chunk - 1);
                for (j = 0; j < chunk; j++) {{
                    comp[out++] = lz_input[lit_start++];
                }}
                run -= chunk;
            }}
            /* encode the back-reference */
            if (len < 9) {{
                comp[out++] = (unsigned char)(((len - 2) << 5) | (offset >> 8));
            }} else {{
                comp[out++] = (unsigned char)((7 << 5) | (offset >> 8));
                comp[out++] = (unsigned char)(len - 9);
            }}
            comp[out++] = (unsigned char)(offset & 0xFF);
            pos += len;
            lit_start = pos;
        }} else {{
            pos++;
        }}
    }}
    /* trailing literals */
    {{
        int run = INLEN - lit_start;
        while (run > 0) {{
            int chunk = run > MAX_LIT ? MAX_LIT : run;
            int j;
            comp[out++] = (unsigned char)(chunk - 1);
            for (j = 0; j < chunk; j++) {{
                comp[out++] = lz_input[lit_start++];
            }}
            run -= chunk;
        }}
    }}
    return out;
}}

int lz_decompress(int comp_len) {{
    int in_pos = 0;
    int out_pos = 0;
    while (in_pos < comp_len) {{
        int token = comp[in_pos++];
        if (token < MAX_LIT) {{
            int count = token + 1;
            while (count--) {{
                back[out_pos++] = comp[in_pos++];
            }}
        }} else {{
            int len = token >> 5;
            int offset;
            if (len == 7) {{
                len = 7 + comp[in_pos++];
            }}
            len = len + 2;
            offset = ((token & 0x1F) << 8) | comp[in_pos++];
            offset = out_pos - offset - 1;
            while (len--) {{
                back[out_pos] = back[offset];
                out_pos++;
                offset++;
            }}
        }}
    }}
    return out_pos;
}}

/* Byte histogram + a cheap log2 proxy: estimates whether LZ or plain
   RLE should win before spending the effort (mirrors lzfx's adaptive
   framing). */

unsigned histogram[256];

int int_log2(unsigned value) {{
    int bits = 0;
    while (value > 1) {{
        value = value >> 1;
        bits++;
    }}
    return bits;
}}

unsigned entropy_proxy(void) {{
    int i;
    unsigned score = 0;
    for (i = 0; i < 256; i++) {{
        histogram[i] = 0;
    }}
    for (i = 0; i < INLEN; i++) {{
        histogram[lz_input[i]]++;
    }}
    for (i = 0; i < 256; i++) {{
        if (histogram[i]) {{
            score += histogram[i] * int_log2(histogram[i]);
        }}
    }}
    return score & 0xFFFF;
}}

int rle_compress_size(void) {{
    /* Size RLE would need (run = 2 bytes, literal = 1 + escape). */
    int size = 0;
    int pos = 0;
    while (pos < INLEN) {{
        int run = 1;
        while (pos + run < INLEN && run < 255 && lz_input[pos + run] == lz_input[pos]) {{
            run++;
        }}
        if (run >= 3) {{
            size += 3;
        }} else {{
            size += 2 * run;
        }}
        pos += run;
    }}
    return size;
}}

int main(void) {{
    unsigned acc = 0;
    unsigned pass;
    for (pass = 0; pass < PASSES; pass++) {{
        int comp_len;
        int back_len;
        unsigned score = entropy_proxy();
        int rle_len = rle_compress_size();
        acc = (acc + score + rle_len) & 0xFFFF;
        comp_len = lz_compress();
        if (comp_len >= rle_len && rle_len < INLEN / 2) {{
            /* the corpus generator never produces this */
            __debug_out(0xFADE);
        }}
        back_len = lz_decompress(comp_len);
        int i;
        if (back_len != INLEN) {{
            __debug_out(0xDEAD);
            return 1;
        }}
        for (i = 0; i < INLEN; i++) {{
            if (back[i] != lz_input[i]) {{
                __debug_out(0xBEEF);
                __debug_out(i);
                return 1;
            }}
        }}
        for (i = 0; i < comp_len; i++) {{
            acc = ((acc << 1 | acc >> 15) ^ comp[i]) & 0xFFFF;
        }}
        acc = (acc + comp_len + pass) & 0xFFFF;
    }}
    __debug_out(acc);
    return 0;
}}
"""


def _compress(data):
    out = []
    hash_tab = [-1] * HASH_SIZE
    pos = 0
    lit_start = 0
    n = len(data)

    def flush(run):
        nonlocal lit_start
        while run > 0:
            chunk = min(run, MAX_LIT)
            out.append(chunk - 1)
            out.extend(data[lit_start : lit_start + chunk])
            lit_start += chunk
            run -= chunk

    while pos + 2 < n:
        slot = ((data[pos] << 8) ^ (data[pos + 1] << 4) ^ data[pos + 2]) & (
            HASH_SIZE - 1
        )
        candidate = hash_tab[slot]
        hash_tab[slot] = pos
        length = 0
        if candidate >= 0 and pos - candidate <= MAX_OFF:
            limit = min(n - pos, 264)
            while length < limit and data[candidate + length] == data[pos + length]:
                length += 1
        if length >= MIN_MATCH:
            offset = pos - candidate - 1
            flush(pos - lit_start)
            if length < 9:
                out.append(((length - 2) << 5) | (offset >> 8))
            else:
                out.append((7 << 5) | (offset >> 8))
                out.append(length - 9)
            out.append(offset & 0xFF)
            pos += length
            lit_start = pos
        else:
            pos += 1
    flush(n - lit_start)
    return out


def _decompress(blob, expect_len):
    out = []
    in_pos = 0
    while in_pos < len(blob):
        token = blob[in_pos]
        in_pos += 1
        if token < MAX_LIT:
            count = token + 1
            out.extend(blob[in_pos : in_pos + count])
            in_pos += count
        else:
            length = token >> 5
            if length == 7:
                length = 7 + blob[in_pos]
                in_pos += 1
            length += 2
            offset = ((token & 0x1F) << 8) | blob[in_pos]
            in_pos += 1
            start = len(out) - offset - 1
            for i in range(length):
                out.append(out[start + i])
    assert len(out) == expect_len
    return out


def _make_corpus(length):
    """Compressible sensor-log-like data: runs, ramps and repeats."""
    generator = Lcg(0x12F)
    data = []
    phrases = [
        [0x10, 0x22, 0x33, 0x44, 0x55, 0x10, 0x22, 0x33],
        [ord(c) for c in "temp=021 "],
        [ord(c) for c in "node-7 ok "],
        [0, 0, 0, 0, 1, 1, 2, 2],
    ]
    while len(data) < length:
        kind = generator.next_byte() % 4
        if kind == 0:
            data.extend([generator.next_byte()] * (4 + generator.next_byte() % 12))
        elif kind == 1:
            base = generator.next_byte()
            data.extend([(base + i) & 0xFF for i in range(generator.next_byte() % 10)])
        elif kind == 2:
            data.extend(phrases[generator.next_byte() % len(phrases)])
        else:
            data.extend(generator.bytes(1 + generator.next_byte() % 6))
    return data[:length]


def _int_log2(value):
    bits = 0
    while value > 1:
        value >>= 1
        bits += 1
    return bits


def _entropy_proxy(data):
    histogram = [0] * 256
    for byte in data:
        histogram[byte] += 1
    score = 0
    for count in histogram:
        if count:
            score += count * _int_log2(count)
    return score & 0xFFFF


def _rle_size(data):
    size = 0
    pos = 0
    while pos < len(data):
        run = 1
        while pos + run < len(data) and run < 255 and data[pos + run] == data[pos]:
            run += 1
        size += 3 if run >= 3 else 2 * run
        pos += run
    return size


def _reference(data, passes):
    compressed = _compress(data)
    restored = _decompress(compressed, len(data))
    assert restored == list(data)
    score = _entropy_proxy(data)
    rle_len = _rle_size(data)
    words = []
    acc = 0
    for pass_index in range(passes):
        acc = (acc + score + rle_len) & 0xFFFF
        if len(compressed) >= rle_len and rle_len < len(data) // 2:
            words.append(0xFADE)
        for byte in compressed:
            acc = ((((acc << 1) | (acc >> 15)) & 0xFFFF) ^ byte) & 0xFFFF
        acc = (acc + len(compressed) + pass_index) & 0xFFFF
    words.append(acc)
    return words


def build(scale=1):
    inlen = 448
    passes = 1 * scale
    data = _make_corpus(inlen)
    source = _TEMPLATE.format(
        inlen=inlen,
        outcap=inlen + inlen // 16 + 64,
        passes=passes,
        hash_size=HASH_SIZE,
        max_lit=MAX_LIT,
        max_off=MAX_OFF,
        input_array=c_array("unsigned char", "lz_input", data),
    )
    return source, _reference(data, passes)
