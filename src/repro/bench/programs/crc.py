"""CRC benchmark: CRC-16/CCITT over a data buffer.

Table-driven (256-entry const table, as in MiBench's crc32) and bitwise
variants, cross-checked against each other each pass. The smallest
benchmark in Table 1 (1470 B binary), dominated by tight loops over
const data.
"""

from repro.bench.datagen import Lcg, c_array

POLY = 0x1021

_TEMPLATE = """
#define N {n}
#define PASSES {passes}

{data_array}
{table_array}

unsigned crc_table_step(unsigned crc, unsigned byte) {{
    unsigned idx = ((crc >> 8) ^ byte) & 0xFF;
    return ((crc << 8) & 0xFFFF) ^ crc16_table[idx];
}}

unsigned crc_bit_step(unsigned crc, unsigned byte) {{
    unsigned i;
    crc = crc ^ ((byte << 8) & 0xFFFF);
    for (i = 0; i < 8; i++) {{
        if (crc & 0x8000) {{
            crc = ((crc << 1) & 0xFFFF) ^ {poly};
        }} else {{
            crc = (crc << 1) & 0xFFFF;
        }}
    }}
    return crc;
}}

unsigned crc_buffer_table(unsigned seed) {{
    unsigned crc = seed;
    int i;
    for (i = 0; i < N; i++) {{
        crc = crc_table_step(crc, crc_data[i]);
    }}
    return crc;
}}

unsigned crc_buffer_bits(unsigned seed) {{
    unsigned crc = seed;
    int i;
    for (i = 0; i < N; i++) {{
        crc = crc_bit_step(crc, crc_data[i]);
    }}
    return crc;
}}

int main(void) {{
    unsigned acc = 0;
    unsigned pass;
    for (pass = 0; pass < PASSES; pass++) {{
        unsigned a = crc_buffer_table(pass);
        unsigned b = crc_buffer_bits(pass);
        if (a != b) {{
            __debug_out(0xDEAD);
            return 1;
        }}
        acc = acc ^ a;
        acc = (acc + pass) & 0xFFFF;
    }}
    __debug_out(acc);
    return 0;
}}
"""


def _crc_table():
    table = []
    for byte in range(256):
        crc = (byte << 8) & 0xFFFF
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


def _crc_buffer(data, seed, table):
    crc = seed
    for byte in data:
        index = ((crc >> 8) ^ byte) & 0xFF
        crc = ((crc << 8) & 0xFFFF) ^ table[index]
    return crc


def build(scale=1):
    n = 192
    passes = 3 * scale
    data = Lcg(0xC12C).bytes(n)
    table = _crc_table()
    source = _TEMPLATE.format(
        n=n,
        passes=passes,
        poly=POLY,
        data_array=c_array("unsigned char", "crc_data", data),
        table_array=c_array("unsigned", "crc16_table", table),
    )
    acc = 0
    for seed in range(passes):
        acc ^= _crc_buffer(data, seed, table)
        acc = (acc + seed) & 0xFFFF
    return source, [acc]
