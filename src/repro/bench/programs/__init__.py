"""The nine benchmark program generators (one module per workload)."""
