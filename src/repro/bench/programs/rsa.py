"""RSA benchmark: textbook RSA over 16-bit moduli.

Square-and-multiply modular exponentiation built on a shift-add
``mulmod`` (the modulus is kept below 2^15 so modular additions never
overflow 16 bits). Encrypt/decrypt/sign round trips over a message
block, checking every recovered word -- multiplication-heavy code with
almost no data, like the paper's RSA (332 B RAM, ratio 2.53).
"""

from repro.bench.datagen import Lcg, c_array

#: Toy key: p=61, q=53 -> n=3233, phi=3120, e=17 (the classic example).
P, Q = 61, 53
N_MOD = P * Q
PHI = (P - 1) * (Q - 1)
E_PUB = 17
D_PRIV = pow(E_PUB, -1, PHI)

_TEMPLATE = """
#define MSGS {msgs}
#define ROUNDS {rounds}
#define N_MOD {n_mod}
#define E_PUB {e_pub}
#define D_PRIV {d_priv}

{msg_array}

unsigned cipher[MSGS];
unsigned opened[MSGS];

unsigned modadd(unsigned x, unsigned y) {{
    /* x, y < N_MOD < 2^15, so x + y never wraps 16 bits. */
    unsigned sum = x + y;
    if (sum >= N_MOD) {{
        sum -= N_MOD;
    }}
    return sum;
}}

unsigned mulmod(unsigned a, unsigned b) {{
    unsigned result = 0;
    a = a % N_MOD;
    while (b) {{
        if (b & 1) {{
            result = modadd(result, a);
        }}
        a = modadd(a, a);
        b = b >> 1;
    }}
    return result;
}}

unsigned powmod(unsigned base, unsigned exponent) {{
    unsigned result = 1;
    base = base % N_MOD;
    while (exponent) {{
        if (exponent & 1) {{
            result = mulmod(result, base);
        }}
        base = mulmod(base, base);
        exponent = exponent >> 1;
    }}
    return result;
}}

unsigned rsa_encrypt(unsigned message) {{
    return powmod(message, E_PUB);
}}

unsigned rsa_decrypt(unsigned ciphertext) {{
    return powmod(ciphertext, D_PRIV);
}}

unsigned rsa_sign(unsigned digest) {{
    return powmod(digest, D_PRIV);
}}

int rsa_verify(unsigned signature, unsigned digest) {{
    return powmod(signature, E_PUB) == digest;
}}

int main(void) {{
    unsigned acc = 0;
    unsigned round;
    for (round = 0; round < ROUNDS; round++) {{
        int i;
        for (i = 0; i < MSGS; i++) {{
            cipher[i] = rsa_encrypt(rsa_msgs[i]);
        }}
        for (i = 0; i < MSGS; i++) {{
            opened[i] = rsa_decrypt(cipher[i]);
            if (opened[i] != rsa_msgs[i]) {{
                __debug_out(0xDEAD);
                return 1;
            }}
        }}
        for (i = 0; i < MSGS; i++) {{
            unsigned sig = rsa_sign(rsa_msgs[i]);
            if (!rsa_verify(sig, rsa_msgs[i])) {{
                __debug_out(0xBAD);
                return 1;
            }}
            acc = (acc ^ sig) & 0xFFFF;
        }}
        acc = (acc + round) & 0xFFFF;
    }}
    __debug_out(acc);
    return 0;
}}
"""


def build(scale=1):
    msgs = 4
    rounds = 1 * scale
    messages = [value % (N_MOD - 2) + 2 for value in Lcg(0x25A).words(msgs)]
    source = _TEMPLATE.format(
        msgs=msgs,
        rounds=rounds,
        n_mod=N_MOD,
        e_pub=E_PUB,
        d_priv=D_PRIV,
        msg_array=c_array("unsigned", "rsa_msgs", messages),
    )
    acc = 0
    for round_index in range(rounds):
        for message in messages:
            signature = pow(message, D_PRIV, N_MOD)
            acc = (acc ^ signature) & 0xFFFF
        acc = (acc + round_index) & 0xFFFF
    return source, [acc]
