"""Bitcount benchmark: seven bit-counting algorithms over a word stream.

MiBench's bitcnts selects counters through a function-pointer jump
table; the paper rewrites that as a switch because SwapRAM needs call
destinations at compile time (§4). We mirror the rewritten form: a
dispatch function with an if/else chain over the algorithm index,
including a recursive counter so the active-counter machinery sees
counts greater than one.
"""

from repro.bench.datagen import Lcg, c_array

_TEMPLATE = """
#define N {n}
#define PASSES {passes}

{data_array}
{table_array}

int count_shift(unsigned value) {{
    int total = 0;
    int i;
    for (i = 0; i < 16; i++) {{
        if (value & 1) {{
            total++;
        }}
        value = value >> 1;
    }}
    return total;
}}

int count_kernighan(unsigned value) {{
    int total = 0;
    while (value) {{
        value = value & (value - 1);
        total++;
    }}
    return total;
}}

int count_table8(unsigned value) {{
    return bits_table[value & 0xFF] + bits_table[(value >> 8) & 0xFF];
}}

int count_nibble(unsigned value) {{
    int total = 0;
    while (value) {{
        total += bits_table[value & 0xF];
        value = value >> 4;
    }}
    return total;
}}

int count_parallel(unsigned value) {{
    value = (value & 0x5555) + ((value >> 1) & 0x5555);
    value = (value & 0x3333) + ((value >> 2) & 0x3333);
    value = (value & 0x0F0F) + ((value >> 4) & 0x0F0F);
    return (int)((value + (value >> 8)) & 0x1F);
}}

int count_recursive(unsigned value) {{
    if (value == 0) {{
        return 0;
    }}
    return (int)(value & 1) + count_recursive(value >> 1);
}}

int count_dense(unsigned value) {{
    int total = 16;
    value = value ^ 0xFFFF;
    while (value) {{
        value = value & (value - 1);
        total--;
    }}
    return total;
}}

int dispatch(int which, unsigned value) {{
    /* MiBench selects counters through a function-pointer jump table;
       the paper replaces it with a switch over the original index (§4)
       so every call destination is visible at compile time. */
    switch (which) {{
    case 0: return count_shift(value);
    case 1: return count_kernighan(value);
    case 2: return count_table8(value);
    case 3: return count_nibble(value);
    case 4: return count_parallel(value);
    case 5: return count_recursive(value);
    default: return count_dense(value);
    }}
}}

int main(void) {{
    unsigned acc = 0;
    unsigned pass;
    for (pass = 0; pass < PASSES; pass++) {{
        int which;
        for (which = 0; which < 7; which++) {{
            unsigned sum = 0;
            int i;
            for (i = 0; i < N; i++) {{
                sum += dispatch(which, bit_data[i]);
            }}
            acc = (acc ^ sum) & 0xFFFF;
            acc = (acc + which) & 0xFFFF;
        }}
    }}
    __debug_out(acc);
    return 0;
}}
"""


def build(scale=1):
    n = 48
    passes = 2 * scale
    data = Lcg(0xB17).words(n)
    table = [bin(value).count("1") for value in range(256)]
    source = _TEMPLATE.format(
        n=n,
        passes=passes,
        data_array=c_array("unsigned", "bit_data", data),
        table_array=c_array("unsigned char", "bits_table", table),
    )
    acc = 0
    for _pass in range(passes):
        for which in range(7):
            total = sum(bin(value).count("1") for value in data) & 0xFFFF
            acc = ((acc ^ total) + which) & 0xFFFF
    return source, [acc]
