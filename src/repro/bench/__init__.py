"""MiBench2-style benchmark suite (paper §4, Table 1).

The nine workloads the paper evaluates -- stringsearch, dijkstra, crc,
rc4, fft, aes, lzfx, bitcount, rsa -- reimplemented in the toolchain's
mini-C dialect with deterministic embedded inputs and pure-Python
reference implementations. Input sizes are scaled down so runs complete
in seconds under the Python simulator; every reported comparison in the
paper is a ratio, which survives the scaling (see DESIGN.md).
"""

from repro.bench.suite import (
    BENCHMARK_NAMES,
    BenchmarkProgram,
    PAPER_TABLE1,
    QUICK_NAMES,
    get_benchmark,
)

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkProgram",
    "PAPER_TABLE1",
    "QUICK_NAMES",
    "get_benchmark",
]
