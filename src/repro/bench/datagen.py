"""Deterministic input generation shared by mini-C sources and references.

Both sides of every benchmark -- the embedded const arrays in the
generated mini-C and the pure-Python reference implementation -- draw
from the same seeded linear congruential generator, so expected outputs
are computed without ever running the simulator.
"""


class Lcg:
    """glibc-style LCG delivering 16-bit and 8-bit values."""

    def __init__(self, seed=1):
        self.state = seed & 0x7FFFFFFF

    def next_word(self):
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return (self.state >> 8) & 0xFFFF

    def next_byte(self):
        return self.next_word() & 0xFF

    def words(self, count, limit=0x10000):
        return [self.next_word() % limit for _ in range(count)]

    def bytes(self, count, limit=0x100):
        return [self.next_byte() % limit for _ in range(count)]


def c_array(ctype, name, values, const=True, per_line=12):
    """Render a mini-C array definition with an initialiser list."""
    prefix = "const " if const else ""
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("    " + ", ".join(str(value) for value in chunk))
    body = ",\n".join(lines)
    return f"{prefix}{ctype} {name}[{len(values)}] = {{\n{body}\n}};\n"


def printable_text(generator, length, words):
    """Deterministic lowercase text with spaces, embedding given words."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    out = []
    while len(out) < length:
        if words and generator.next_byte() < 24:
            for char in words[generator.next_byte() % len(words)]:
                out.append(ord(char))
            out.append(ord(" "))
            continue
        run = 2 + generator.next_byte() % 8
        for _ in range(run):
            out.append(ord(letters[generator.next_byte() % 26]))
        out.append(ord(" "))
    return out[:length]
