"""The ``repro faults`` subcommand: intermittent-power campaigns.

::

    python -m repro faults sweep --seed 1
    python -m repro faults sweep --seed 1 --benchmarks crc rsa \\
        --systems baseline swapram blockcache --schedules fixed:0.5 \\
        periodic:0.35 adversarial:memcpy
    python -m repro faults sweep --seed 1 --difftest-seeds 3 7
    python -m repro faults replay --benchmark crc --system swapram \\
        --schedule adversarial:memcpy --seed 1

``sweep`` runs the full targets x schedules matrix and writes one JSON
report to ``results/faults/sweep-seed<N>.json``. Every stochastic
choice descends from ``--seed`` and the report contains no timestamps,
so two invocations with the same arguments produce byte-identical
files -- CI diffs them to enforce it. Classifications other than
``correct`` are *findings*, not failures -- a non-idempotent program is
wrong-result after a reboot even on the baseline system -- so a
completed sweep always exits 0 and CI asserts on the JSON report.

``replay`` re-runs a single case with an observability timeline
attached and prints the boot-by-boot story: where each fuse blew, what
the post-reboot audit found, and the final classification.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.faults.harness import (
    MAX_INSTRUCTIONS_PER_BOOT,
    MAX_REBOOTS,
    SYSTEMS,
    FaultSweep,
    benchmark_target,
    difftest_target,
    run_case,
)
from repro.faults.schedule import ScheduleError, parse_schedule
from repro.metrics.registry import MetricsRegistry

DEFAULT_BENCHMARKS = ("crc", "rsa")
DEFAULT_SYSTEMS = ("baseline", "swapram")
DEFAULT_SCHEDULES = ("fixed:0.5", "periodic:0.35", "adversarial:memcpy")


def _parser():
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Intermittent-power fault injection and "
        "crash-consistency checking.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run a targets x schedules campaign")
    replay = sub.add_parser("replay", help="re-run one case with a timeline")
    for cmd in (sweep, replay):
        cmd.add_argument(
            "--seed", type=int, default=1, help="campaign seed (default: 1)"
        )
        cmd.add_argument(
            "--max-reboots",
            type=int,
            default=MAX_REBOOTS,
            help=f"reboot watchdog per case (default: {MAX_REBOOTS})",
        )
        cmd.add_argument(
            "--max-instructions",
            type=int,
            default=MAX_INSTRUCTIONS_PER_BOOT,
            help="per-boot instruction budget",
        )
        cmd.add_argument(
            "--recovery",
            choices=("none", "meta"),
            default="none",
            help="reboot recovery model (default: none, the paper's system)",
        )
        cmd.add_argument(
            "--scale", type=int, default=1, help="benchmark scale (default: 1)"
        )

    sweep.add_argument(
        "--benchmarks",
        nargs="*",
        default=list(DEFAULT_BENCHMARKS),
        help=f"benchmark targets (default: {' '.join(DEFAULT_BENCHMARKS)})",
    )
    sweep.add_argument(
        "--difftest-seeds",
        nargs="*",
        type=int,
        default=[],
        help="difftest-generated programs to add as targets",
    )
    sweep.add_argument(
        "--systems",
        nargs="*",
        choices=SYSTEMS,
        default=list(DEFAULT_SYSTEMS),
        help=f"systems under test (default: {' '.join(DEFAULT_SYSTEMS)})",
    )
    sweep.add_argument(
        "--schedules",
        nargs="*",
        default=list(DEFAULT_SCHEDULES),
        help=f"fault schedules (default: {' '.join(DEFAULT_SCHEDULES)})",
    )
    sweep.add_argument(
        "--out",
        default="results/faults",
        help="report directory (default: results/faults)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard the matrix across N worker processes via the sweep "
        "engine (the report stays byte-identical to --jobs 1)",
    )
    sweep.add_argument(
        "--build-cache",
        default=None,
        metavar="DIR",
        help="persist compiled programs under DIR across runs "
        "(same as REPRO_BUILD_CACHE)",
    )
    sweep.add_argument(
        "--trace",
        action="store_true",
        help="record orchestration-plane spans for the --jobs campaign "
        "(see docs/tracing.md)",
    )

    replay.add_argument("--benchmark", help="benchmark name to replay")
    replay.add_argument(
        "--difftest-seed", type=int, help="difftest program seed to replay"
    )
    replay.add_argument(
        "--system", choices=SYSTEMS, default="swapram", help="system under test"
    )
    replay.add_argument(
        "--schedule", default="adversarial:memcpy", help="fault schedule spec"
    )
    replay.add_argument("--json", help="also write the case report to this path")
    return parser


def _check_schedules(specs):
    for spec in specs:
        parse_schedule(spec)  # raises ScheduleError on malformed specs


def _sweep_targets(args):
    targets = []
    for benchmark in args.benchmarks:
        for system in args.systems:
            targets.append(benchmark_target(benchmark, system, scale=args.scale))
    for seed in args.difftest_seeds:
        for system in args.systems:
            targets.append(difftest_target(seed, system))
    return targets


def _serial_cases(args):
    """The case dicts and summed metrics, via the serial FaultSweep."""
    metrics = MetricsRegistry()
    sweep = FaultSweep(
        seed=args.seed,
        max_reboots=args.max_reboots,
        max_instructions=args.max_instructions,
        recovery=args.recovery,
        metrics=metrics,
    )
    reports = sweep.run(_sweep_targets(args), args.schedules)
    return [report.as_dict() for report in reports], metrics.as_dict()


def _parallel_cases(args, out):
    """The same case dicts via the sweep engine's worker pool.

    Units land in the sweep store under their content-addressed keys;
    this reassembles them in the serial iteration order (targets outer,
    schedules inner) and sums the per-case counters, so the final
    report is byte-identical to the ``--jobs 1`` document.
    """
    from repro.sweep import CampaignStore, fault_campaign, run_campaign, unit_key

    config = fault_campaign(
        benchmarks=args.benchmarks,
        systems=args.systems,
        schedules=args.schedules,
        difftest_seeds=args.difftest_seeds,
        seed=args.seed,
        recovery=args.recovery,
        scale=args.scale,
        max_reboots=args.max_reboots,
        max_instructions=args.max_instructions,
    )
    outcome = run_campaign(
        config,
        jobs=args.jobs,
        progress=lambda line: print(line, file=out),
        trace=args.trace,
    )
    if not outcome.complete:
        raise RuntimeError(
            f"fault campaign incomplete ({outcome.pending} units pending); "
            f"resume with: python -m repro sweep resume {outcome.directory}"
        )
    store = CampaignStore(outcome.directory)
    labels = [f"bench:{name}" for name in args.benchmarks]
    labels += [f"difftest:{seed}" for seed in args.difftest_seeds]
    cases, totals = [], {}
    for label in labels:
        for system in args.systems:
            for schedule in args.schedules:
                spec = dict(config.params)
                spec.update(
                    {
                        "kind": "fault",
                        "target": label,
                        "system": system,
                        "schedule": schedule,
                    }
                )
                record = store.read_unit(unit_key(spec))
                if record["status"] != "ok":
                    raise RuntimeError(
                        f"unit {unit_key(spec)} ({label} {system} {schedule}) "
                        f"failed: {record['result'].get('error')}"
                    )
                payload = record["result"]
                cases.append(payload["case"])
                for name, metric in payload["metrics"].items():
                    totals[name] = _merge_metric(totals.get(name), metric)
    return cases, {name: totals[name] for name in sorted(totals)}


def _merge_metric(total, metric):
    """Fold one case's metric into the campaign total.

    Reproduces what one shared registry would have accumulated across
    the serial sweep: counters and histogram moments sum, gauges keep
    the last write (cases are folded in serial order), means are
    re-derived from the merged moments.
    """
    if total is None:
        return dict(metric)
    kind = metric["type"]
    if kind == "counter":
        total["value"] += metric["value"]
    elif kind == "gauge":
        total["value"] = metric["value"]
    elif kind == "histogram":
        total["count"] += metric["count"]
        total["sum"] += metric["sum"]
        for bound, pick in (("min", min), ("max", max)):
            if metric[bound] is not None:
                total[bound] = (
                    metric[bound]
                    if total[bound] is None
                    else pick(total[bound], metric[bound])
                )
        total["mean"] = total["sum"] / total["count"] if total["count"] else 0.0
    else:
        raise RuntimeError(f"cannot merge metric type {kind!r}")
    return total


def run_sweep(args, out):
    _check_schedules(args.schedules)
    if args.build_cache is not None:
        from repro.toolchain import BUILD_CACHE

        BUILD_CACHE.attach_disk(args.build_cache)
    if args.jobs > 1:
        cases, metrics = _parallel_cases(args, out)
    else:
        cases, metrics = _serial_cases(args)
    summary = {"correct": 0, "wrong-result": 0, "crash": 0, "livelock": 0}
    for case in cases:
        summary[case["classification"]] = summary.get(case["classification"], 0) + 1

    document = {
        "seed": args.seed,
        "recovery": args.recovery,
        "schedules": list(args.schedules),
        "summary": summary,
        "metrics": metrics,
        "cases": cases,
    }
    directory = Path(args.out)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"sweep-seed{args.seed}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    names = [f"{c['label']}/{c['system']}/{c['plan']}" for c in cases]
    width = max(len(name) for name in names) if names else 10
    for name, case in zip(names, cases):
        window = case.get("resolved_window")
        print(
            f"{name:<{width}}  {case['schedule']:<20} "
            f"{case['classification']:<12} reboots={case['power_cycles']}"
            + (f" [{window}]" if window else ""),
            file=out,
        )
    print(
        "summary: "
        + "  ".join(f"{kind}={count}" for kind, count in sorted(summary.items())),
        file=out,
    )
    print(f"report : {path}", file=out)
    return 0


def run_replay(args, out):
    if (args.benchmark is None) == (args.difftest_seed is None):
        print("replay needs exactly one of --benchmark/--difftest-seed", file=out)
        return 2
    _check_schedules([args.schedule])
    if args.benchmark is not None:
        target = benchmark_target(args.benchmark, args.system, scale=args.scale)
    else:
        target = difftest_target(args.difftest_seed, args.system)

    report = run_case(
        target,
        args.schedule,
        args.seed,
        max_reboots=args.max_reboots,
        max_instructions=args.max_instructions,
        recovery=args.recovery,
        timeline=True,
    )

    print(f"case   : {target.name}  {args.schedule}  seed={args.seed}", file=out)
    print(
        f"golden : {report.golden.total_cycles} cycles, "
        f"{report.golden.energy_nj / 1000:.2f} uJ",
        file=out,
    )
    if report.resolved_window:
        print(f"window : {report.resolved_window}", file=out)
    for boot in report.boots:
        line = (
            f"boot {boot.index:>2} : cycles {boot.start_cycle}..{boot.end_cycle}"
            f"  {boot.outcome}"
        )
        if boot.fuse:
            line += f"  fuse={boot.fuse}"
        if boot.interrupted_in:
            line += f"  in={boot.interrupted_in}"
        print(line, file=out)
        for finding in boot.post_reboot_findings:
            print(f"         audit: {finding}", file=out)
    print(f"result : {report.classification}", file=out)
    if report.detail:
        print(f"detail : {report.detail}", file=out)
    for finding in report.consistency:
        print(f"final audit: {finding}", file=out)

    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report : {path}", file=out)
    return 0 if report.classification else 1


def main(argv=None, out=sys.stdout):
    args = _parser().parse_args(argv)
    try:
        if args.command == "sweep":
            return run_sweep(args, out)
        return run_replay(args, out)
    except ScheduleError as error:
        print(f"error: {error}", file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())
