"""The reboot-and-rerun fault harness.

One *case* = (target program+system, fault schedule, campaign seed).
The harness first takes a **golden run** -- never interrupted, timeline
attached -- then rebuilds the system with fused counters and replays it
under the schedule: each blown fuse is a power failure, followed by a
:meth:`~repro.machine.board.Board.power_cycle` (FRAM persists, SRAM
scrambles, CPU resets) and another boot, up to a max-reboot watchdog.

Outcome taxonomy (one classification per case):

* ``correct`` -- a boot ran to the halt port, its debug-word stream
  matches the golden run's, and every FRAM-resident mutable data
  section ended bit-identical to the golden finale.
* ``wrong-result`` -- a boot completed but output or durable data
  diverged (e.g. a non-idempotent program re-entered ``main`` over
  already-mutated FRAM globals).
* ``crash`` -- a boot died on a :class:`SimulationError` (typically a
  call through a dangling redirection entry into scrambled SRAM).
* ``livelock`` -- the case never completed: either the max-reboot
  watchdog expired (periodic budgets below the program's runtime can
  never finish -- SwapRAM restarts ``main`` from scratch every boot) or
  a single boot span exceeded its instruction budget.

``recovery`` models what a crash-aware port would do in ``crt0``:
``none`` is the paper's system verbatim; ``meta`` re-initialises the
cache runtime's FRAM metadata sections (and the host-side policy
mirror) from the pristine image on every reboot, which repairs every
dangling/stale/stuck finding at the cost of losing all cached state.
"""

import random
from dataclasses import dataclass, field

from repro.blockcache.system import build_blockcache
from repro.core.policy import POLICIES
from repro.core.system import build_swapram
from repro.datacache.cache import DataCacheConfig
from repro.datacache.system import build_datacache
from repro.difftest.generator import generate_program
from repro.faults.consistency import audit_system
from repro.faults.schedule import parse_schedule
from repro.machine.cpu import RunawayError, SimulationError
from repro.machine.power import FusedAccessCounters, PowerFailure
from repro.obs.timeline import Timeline
from repro.toolchain.build import build_baseline
from repro.toolchain.linker import PLANS

#: Default per-boot instruction budget; quick benchmarks retire ~200k
#: instructions, so 5M means a boot is decisively hung, not just slow.
MAX_INSTRUCTIONS_PER_BOOT = 5_000_000

#: Default reboot watchdog: enough for jittered periodic schedules to
#: find a surviving boot, small enough to bound a livelocked case.
MAX_REBOOTS = 16

#: FRAM sections restored by ``recovery='meta'`` (whichever exist).
RECOVERY_SECTIONS = ("srmeta", "srruntime", "bbmeta", "bbstubs", "bbruntime")

#: Data-cache fault variants: the crash question is a (mode, cleaning)
#: question, so each interesting corner is its own system name and
#: flows through target matrices, sweep units and CLI choices unchanged.
DATACACHE_VARIANTS = {
    "datacache-wt": DataCacheConfig(mode="through", cleaning="none"),
    "datacache-wb": DataCacheConfig(mode="back", cleaning="alru"),
    "datacache-acp": DataCacheConfig(mode="back", cleaning="acp"),
}

SYSTEMS = ("baseline", "swapram", "blockcache", *DATACACHE_VARIANTS)


@dataclass(frozen=True)
class FaultTarget:
    """One program/system/plan coordinate of the sweep matrix."""

    label: str
    source: str = field(repr=False, default="")
    system: str = "swapram"
    plan: str = "unified"
    policy: str = "queue"

    @property
    def name(self):
        return f"{self.label}/{self.system}/{self.plan}"


def benchmark_target(benchmark, system, plan="unified", scale=1):
    if benchmark == "dcguard":
        # The write-back crash-hazard demo program (not a Table 1
        # benchmark): a persistent init-flag guard whose durability
        # order the cleaning policy controls. See repro.datacache.demo.
        from repro.datacache.demo import build

        source, _ = build(scale=scale)
        return FaultTarget(label=benchmark, source=source, system=system, plan=plan)
    from repro.bench import get_benchmark

    program = get_benchmark(benchmark, scale=scale)
    return FaultTarget(label=benchmark, source=program.source, system=system, plan=plan)


def difftest_target(seed, system, plan="unified", size="small"):
    """A seeded difftest-generated program as a fault target."""
    program = generate_program(seed, size=size)
    return FaultTarget(
        label=f"difftest{seed}", source=program.render(), system=system, plan=plan
    )


def build_target(target, counters=None):
    """Build (without running) one target; returns (system_or_board, board)."""
    plan = PLANS[target.plan]
    kwargs = {} if counters is None else {"counters": counters}
    if target.system == "baseline":
        board = build_baseline(target.source, plan, **kwargs)
        return board, board
    if target.system == "swapram":
        system = build_swapram(
            target.source, plan, policy_class=POLICIES[target.policy], **kwargs
        )
        return system, system.board
    if target.system == "blockcache":
        system = build_blockcache(target.source, plan, **kwargs)
        return system, system.board
    if target.system in DATACACHE_VARIANTS:
        system = build_datacache(
            target.source, plan, DATACACHE_VARIANTS[target.system], **kwargs
        )
        return system, system.board
    raise ValueError(f"unknown system {target.system!r} (one of {SYSTEMS})")


@dataclass
class GoldenRun:
    """The never-interrupted reference execution of one target."""

    target: FaultTarget
    debug_words: list
    output_text: str
    total_cycles: int
    energy_nj: float
    data_sections: dict  # section name -> final bytes (FRAM-resident only)
    timeline_events: list

    def as_dict(self):
        return {
            "debug_words": list(self.debug_words),
            "total_cycles": self.total_cycles,
            "energy_nj": self.energy_nj,
        }


def _persistent_data_sections(board):
    """Final bytes of FRAM-resident mutable data (what power preserves).

    The stack is excluded: its residue is execution detail, not program
    state. SRAM-resident sections are excluded because they are lost at
    the first power cycle by construction.
    """
    linked = board.linked
    sections = {}
    for name in ("data", "bss"):
        if linked.plan.data != "fram":
            continue
        base, size = linked.image.section_extents.get(name, (0, 0))
        if size:
            sections[name] = board.memory.read_bytes(base, size)
    return sections


def run_golden(target, max_instructions=MAX_INSTRUCTIONS_PER_BOOT):
    """Build and run *target* uninterrupted, timeline attached."""
    system, board = build_target(target)
    timeline = Timeline(board.counters)
    runtime = getattr(system, "runtime", None)
    if runtime is not None:
        runtime.timeline = timeline
    result = board.run(max_instructions=max_instructions)
    return GoldenRun(
        target=target,
        debug_words=list(result.debug_words),
        output_text=result.output_text,
        total_cycles=result.total_cycles,
        energy_nj=result.energy_nj,
        data_sections=_persistent_data_sections(board),
        timeline_events=list(timeline.events),
    )


@dataclass
class BootRecord:
    """One power-on span of a faulted case."""

    index: int
    start_cycle: int
    end_cycle: int
    outcome: str  # 'completed' | 'power-failure' | 'crash' | 'runaway'
    fuse: str = ""
    interrupted_in: str = ""  # attribution of the access that died
    debug_words: list = field(default_factory=list)
    post_reboot_findings: list = field(default_factory=list)

    def as_dict(self):
        record = {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "outcome": self.outcome,
        }
        if self.fuse:
            record["fuse"] = self.fuse
        if self.interrupted_in:
            record["interrupted_in"] = self.interrupted_in
        record["debug_words"] = list(self.debug_words)
        if self.post_reboot_findings:
            record["post_reboot_findings"] = list(self.post_reboot_findings)
        return record


@dataclass
class CaseReport:
    """Everything one fault case observed."""

    target: FaultTarget
    schedule: str
    seed: int
    recovery: str
    classification: str
    detail: str
    power_cycles: int
    boots: list
    golden: GoldenRun
    final_cycles: int
    consistency: list  # final-state audit findings (durable metadata)
    resolved_window: str = ""  # adversarial schedules: window actually used
    mismatches: list = field(default_factory=list)

    def as_dict(self):
        record = {
            "label": self.target.label,
            "system": self.target.system,
            "plan": self.target.plan,
            "schedule": self.schedule,
            "seed": self.seed,
            "recovery": self.recovery,
            "classification": self.classification,
            "detail": self.detail,
            "power_cycles": self.power_cycles,
            "boots": [boot.as_dict() for boot in self.boots],
            "golden": self.golden.as_dict(),
            "final_cycles": self.final_cycles,
            "consistency": list(self.consistency),
        }
        if self.resolved_window:
            record["resolved_window"] = self.resolved_window
        if self.mismatches:
            record["mismatches"] = list(self.mismatches)
        return record


def _capture_pristine_metadata(board):
    """Bytes of every cache-metadata FRAM section, straight after load."""
    pristine = {}
    for name in RECOVERY_SECTIONS:
        base, size = board.linked.image.section_extents.get(name, (0, 0))
        if size:
            pristine[name] = (base, board.memory.read_bytes(base, size))
    return pristine


def _recover_metadata(system, board, pristine):
    """The ``recovery='meta'`` reboot hook: re-initialise durable metadata.

    Restores the pristine FRAM metadata sections host-side (modelling a
    crt0 re-init whose cost is not part of the paper's system, hence
    uncharged) and resets the runtime's host-side placement mirror to
    match the now-empty cache.
    """
    for base, blob in pristine.values():
        board.memory.write_bytes(base, blob)
    runtime = getattr(system, "runtime", None)
    if runtime is None:
        return
    if hasattr(runtime, "policy"):  # SwapRAM
        runtime.policy.reset()
    if hasattr(runtime, "free_slots"):  # block cache
        runtime.free_slots = list(range(runtime.num_slots))
        runtime.cached_blocks = {}


def run_case(
    target,
    schedule_spec,
    seed,
    golden=None,
    max_reboots=MAX_REBOOTS,
    max_instructions=MAX_INSTRUCTIONS_PER_BOOT,
    recovery="none",
    metrics=None,
    timeline=None,
):
    """Run one fault case to classification; returns a :class:`CaseReport`.

    *golden* may be passed in to share one golden run across schedules.
    *metrics* is an optional :class:`~repro.metrics.registry.MetricsRegistry`
    receiving ``faults.*`` counters; *timeline* an optional
    :class:`~repro.obs.timeline.Timeline`-accepting flag: pass True to
    record power-down/power-up (and runtime) events for replay output.
    """
    if golden is None:
        golden = run_golden(target, max_instructions=max_instructions)
    schedule = parse_schedule(schedule_spec)
    schedule.prepare(golden)
    rng = random.Random(f"faults:{seed}:{target.name}:{schedule_spec}")

    counters = FusedAccessCounters()
    system, board = build_target(target, counters=counters)
    pristine = _capture_pristine_metadata(board) if recovery == "meta" else None
    runtime = getattr(system, "runtime", None)
    if timeline is True:
        timeline = Timeline(counters)
    if timeline is not None and runtime is not None:
        runtime.timeline = timeline
    if metrics is not None and runtime is not None:
        runtime.metrics = metrics

    boots = []
    classification = None
    detail = ""
    completed_words = None
    boot = 0
    while True:
        fuse = schedule.next_fuse(boot, counters, rng)
        fuse_label = ""
        if fuse is not None:
            fuse.arm(counters)
            fuse_label = f"{fuse.kind}@{fuse.value:.0f}"
        start_cycle = counters.total_cycles
        debug_start = len(board.bus.debug_words)
        if metrics is not None:
            metrics.counter("faults.boots").inc()
        try:
            board.cpu.run(max_instructions=max_instructions)
        except PowerFailure as failure:
            counters.disarm()
            record = BootRecord(
                index=boot,
                start_cycle=start_cycle,
                end_cycle=counters.total_cycles,
                outcome="power-failure",
                fuse=fuse_label,
                interrupted_in=(
                    failure.attribution.value if failure.attribution else ""
                ),
                debug_words=list(board.bus.debug_words[debug_start:]),
            )
            boots.append(record)
            if metrics is not None:
                metrics.counter("faults.power_failures").inc()
            if timeline is not None:
                timeline.record(
                    "power-down",
                    note=f"boot {boot}: {fuse_label} in {record.interrupted_in}",
                )
            if boot >= max_reboots:
                classification = "livelock"
                detail = f"no boot completed within {max_reboots} reboots"
                break
            board.power_cycle(seed=f"{seed}:{target.name}:{boot}")
            if pristine is not None:
                _recover_metadata(system, board, pristine)
            record.post_reboot_findings = audit_system(system, post_reboot=True)
            if metrics is not None:
                metrics.counter("faults.power_cycles").inc()
            if timeline is not None:
                timeline.record("power-up", note=f"boot {boot + 1}")
            boot += 1
            continue
        except RunawayError as error:
            counters.disarm()
            boots.append(
                BootRecord(
                    index=boot,
                    start_cycle=start_cycle,
                    end_cycle=counters.total_cycles,
                    outcome="runaway",
                    fuse=fuse_label,
                    debug_words=list(board.bus.debug_words[debug_start:]),
                )
            )
            classification = "livelock"
            detail = str(error)
            break
        except SimulationError as error:
            counters.disarm()
            boots.append(
                BootRecord(
                    index=boot,
                    start_cycle=start_cycle,
                    end_cycle=counters.total_cycles,
                    outcome="crash",
                    fuse=fuse_label,
                    debug_words=list(board.bus.debug_words[debug_start:]),
                )
            )
            classification = "crash"
            detail = str(error)
            break
        counters.disarm()
        completed_words = list(board.bus.debug_words[debug_start:])
        boots.append(
            BootRecord(
                index=boot,
                start_cycle=start_cycle,
                end_cycle=counters.total_cycles,
                outcome="completed",
                fuse=fuse_label,
                debug_words=completed_words,
            )
        )
        break

    mismatches = []
    if classification is None:
        if completed_words != golden.debug_words:
            mismatches.append(
                f"debug words {completed_words[:8]} != golden "
                f"{golden.debug_words[:8]}"
            )
        for name, expected in golden.data_sections.items():
            base, size = board.linked.image.section_extents.get(name, (0, 0))
            actual = board.memory.read_bytes(base, size)
            if actual != expected:
                differing = sum(1 for a, b in zip(actual, expected) if a != b)
                mismatches.append(
                    f"FRAM section {name}: {differing}/{size} bytes differ "
                    "from golden finale"
                )
        classification = "correct" if not mismatches else "wrong-result"
        if mismatches:
            detail = mismatches[0]
    if metrics is not None:
        metrics.counter(f"faults.outcome.{classification}").inc()

    return CaseReport(
        target=target,
        schedule=schedule_spec,
        seed=seed,
        recovery=recovery,
        classification=classification,
        detail=detail,
        power_cycles=sum(1 for b in boots if b.outcome == "power-failure"),
        boots=boots,
        golden=golden,
        final_cycles=counters.total_cycles,
        consistency=audit_system(system),
        resolved_window=getattr(schedule, "resolved_window", "") or "",
        mismatches=mismatches,
    )


class FaultSweep:
    """A deterministic campaign over targets x schedules.

    Memoises golden runs per target so the N schedules of one target
    share a single reference execution.
    """

    def __init__(
        self,
        seed,
        max_reboots=MAX_REBOOTS,
        max_instructions=MAX_INSTRUCTIONS_PER_BOOT,
        recovery="none",
        metrics=None,
    ):
        self.seed = seed
        self.max_reboots = max_reboots
        self.max_instructions = max_instructions
        self.recovery = recovery
        self.metrics = metrics
        self._goldens = {}

    def golden(self, target):
        if target.name not in self._goldens:
            self._goldens[target.name] = run_golden(
                target, max_instructions=self.max_instructions
            )
        return self._goldens[target.name]

    def run(self, targets, schedules):
        """Run the full matrix; returns a list of :class:`CaseReport`."""
        reports = []
        for target in targets:
            golden = self.golden(target)
            for spec in schedules:
                reports.append(
                    run_case(
                        target,
                        spec,
                        self.seed,
                        golden=golden,
                        max_reboots=self.max_reboots,
                        max_instructions=self.max_instructions,
                        recovery=self.recovery,
                        metrics=self.metrics,
                    )
                )
        return reports


def summarize(reports):
    """Classification tally across a sweep's case reports."""
    summary = {"correct": 0, "wrong-result": 0, "crash": 0, "livelock": 0}
    for report in reports:
        summary[report.classification] = summary.get(report.classification, 0) + 1
    return summary
