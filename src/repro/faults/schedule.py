"""Deterministic power-failure schedules.

A schedule decides, per boot, where the next power failure lands --
expressed as an absolute :class:`Fuse` threshold for the board's
:class:`~repro.machine.power.FusedAccessCounters`. Three families:

* ``fixed:X`` -- one failure at cycle X of the first boot (X may be a
  fraction of the golden run's total cycles), then stable power. The
  basic "did one outage corrupt anything durable" probe.
* ``periodic:X`` / ``energy:X`` -- every boot gets a budget of X cycles
  (or X nJ): the harvested-power model. Budgets are jittered +-50 %
  around the mean by the campaign seed, so some boots survive long
  enough to finish and some die early -- without jitter a budget below
  the program's runtime can never complete (SwapRAM has no
  checkpointing; every reboot restarts ``main``) and the watchdog
  classifies the run as a livelock, which is itself an honest finding.
* ``adversarial:memcpy|evict|reloc`` -- one failure aimed at a
  SwapRAM-critical window, located by reading the golden run's obs
  timeline: mid-``memcpy`` during a cache fill, mid-eviction metadata
  reset, or mid-relocation patching just before the redirection entry
  flips. Runs are deterministic, so a cycle chosen from the golden
  timeline lands at the same machine state in the fault run.

Every stochastic choice (jitter) flows from one ``random.Random``
handed in by the harness, which derives it from the single campaign
``--seed`` -- reports are bit-reproducible.
"""

from dataclasses import dataclass

#: Fraction of the miss->cache window at which an adversarial memcpy
#: fault is injected. The copy loop dominates that window for any
#: function bigger than a few words, so 0.6 lands inside the memcpy
#: (verified by the harness recording the blown fuse's attribution).
MEMCPY_WINDOW_FRACTION = 0.6

#: Cycles after an ``evict`` event / before a ``cache`` event targeted
#: by the evict/reloc windows (the metadata writes immediately follow /
#: precede those timeline records).
EVICT_WINDOW_OFFSET = 12
RELOC_WINDOW_OFFSET = 8


class ScheduleError(ValueError):
    """Malformed schedule specification."""


@dataclass(frozen=True)
class Fuse:
    """An absolute budget threshold to arm before a boot."""

    kind: str  # 'cycles' | 'energy'
    value: float

    def arm(self, counters):
        if self.kind == "cycles":
            counters.cycle_fuse = self.value
        else:
            counters.energy_fuse = self.value


class FaultSchedule:
    """Base: a named, deterministic source of per-boot fuses."""

    def __init__(self, spec):
        self.spec = spec

    def prepare(self, golden):
        """Resolve golden-relative targets; called once per case."""

    def next_fuse(self, boot, counters, rng):
        """Fuse for boot *boot* (0-based), or None for stable power."""
        raise NotImplementedError


def _parse_amount(text, what):
    """'0.5' -> (fraction, 0.5); '12000' -> (absolute, 12000.0)."""
    try:
        value = float(text)
    except ValueError as error:
        raise ScheduleError(f"bad {what} amount {text!r}") from error
    if value <= 0:
        raise ScheduleError(f"{what} amount must be positive, got {text!r}")
    if value < 1 or "." in text:
        return "fraction", value
    return "absolute", value


class FixedCycleSchedule(FaultSchedule):
    """One power failure at a fixed cycle of the first boot."""

    def __init__(self, spec, amount):
        super().__init__(spec)
        self.mode, self.amount = _parse_amount(amount, "fixed-cycle")
        self._target = None

    def prepare(self, golden):
        if self.mode == "fraction":
            self._target = max(int(self.amount * golden.total_cycles), 1)
        else:
            self._target = int(self.amount)

    def next_fuse(self, boot, counters, rng):
        if boot == 0:
            return Fuse("cycles", self._target)
        return None


class PeriodicBudgetSchedule(FaultSchedule):
    """Every boot gets a (jittered) cycle or energy budget."""

    def __init__(self, spec, amount, unit="cycles", jitter=0.5):
        super().__init__(spec)
        self.mode, self.amount = _parse_amount(amount, unit)
        self.unit = unit
        self.jitter = jitter
        self._budget = None

    def prepare(self, golden):
        if self.mode == "fraction":
            total = (
                golden.total_cycles if self.unit == "cycles" else golden.energy_nj
            )
            self._budget = self.amount * total
        else:
            self._budget = self.amount

    def next_fuse(self, boot, counters, rng):
        budget = self._budget * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))
        if self.unit == "cycles":
            return Fuse("cycles", counters.total_cycles + max(int(budget), 1))
        return Fuse("energy", counters.energy_nj + max(budget, 1e-9))


class AdversarialSchedule(FaultSchedule):
    """One failure aimed at a SwapRAM-critical window of the golden run.

    Falls back to mid-run when the golden timeline has no matching
    window (a baseline board, or a run that never cached/evicted) --
    recorded in the report as ``window='fallback'``.
    """

    WINDOWS = ("memcpy", "evict", "reloc")

    def __init__(self, spec, window):
        super().__init__(spec)
        if window not in self.WINDOWS:
            raise ScheduleError(
                f"unknown adversarial window {window!r} (one of {self.WINDOWS})"
            )
        self.window = window
        self.resolved_window = None
        self._target = None

    def prepare(self, golden):
        events = golden.timeline_events
        target = None
        if self.window == "memcpy":
            target = self._mid_copy_target(events)
        elif self.window == "evict":
            evicts = [e for e in events if e.kind == "evict"]
            if evicts:
                target = evicts[0].cycle + EVICT_WINDOW_OFFSET
        elif self.window == "reloc":
            caches = [e for e in events if e.kind == "cache"]
            if caches:
                target = max(caches[0].cycle - RELOC_WINDOW_OFFSET, 1)
        if target is None:
            self.resolved_window = "fallback"
            target = max(golden.total_cycles // 2, 1)
        else:
            self.resolved_window = self.window
        self._target = target

    @staticmethod
    def _mid_copy_target(events):
        """Aim inside the widest miss->cache gap (the largest copy)."""
        best = None
        last_miss = {}
        for event in events:
            if event.kind == "miss":
                last_miss[event.func_id] = event.cycle
            elif event.kind == "cache" and event.func_id in last_miss:
                gap = event.cycle - last_miss[event.func_id]
                if best is None or gap > best[1]:
                    best = (last_miss[event.func_id], gap)
                del last_miss[event.func_id]
        if best is None:
            return None
        start, gap = best
        return start + max(int(gap * MEMCPY_WINDOW_FRACTION), 1)

    def next_fuse(self, boot, counters, rng):
        if boot == 0:
            return Fuse("cycles", self._target)
        return None


def parse_schedule(spec):
    """Build a schedule from its CLI spec string."""
    head, sep, rest = spec.partition(":")
    if not sep or not rest:
        raise ScheduleError(
            f"schedule {spec!r} needs a parameter (e.g. 'fixed:0.5')"
        )
    if head == "fixed":
        return FixedCycleSchedule(spec, rest)
    if head == "periodic":
        return PeriodicBudgetSchedule(spec, rest, unit="cycles")
    if head == "energy":
        return PeriodicBudgetSchedule(spec, rest, unit="energy")
    if head == "adversarial":
        return AdversarialSchedule(spec, rest)
    raise ScheduleError(
        f"unknown schedule kind {head!r} "
        "(one of fixed, periodic, energy, adversarial)"
    )
