"""Crash-consistency audit of FRAM-resident caching metadata.

After a power failure the SRAM function cache is gone, but SwapRAM's
control metadata -- redirection entries, relocation entries, active
counters -- lives in FRAM and *survives*. Nothing in the paper's design
re-initialises it on boot, so the audit asks: does the durable state
still describe a machine the next boot can trust?

Findings (each is one human-readable string, stable across runs):

* ``dangling-redirect`` -- a redirection entry points into the SRAM
  cache window but the bytes there no longer match the function's NVM
  code (the copy died with the power). The next call to that function
  jumps into scrambled garbage: the paper-faithful reason SwapRAM is
  not crash-safe without metadata recovery.
* ``wild-redirect`` -- a redirection entry points neither at the miss
  handler nor into the cache window (torn metadata write).
* ``stale-reloc`` -- a relocation entry disagrees with where its
  function actually is (NVM base when redirected to the handler, SRAM
  base when cached): an absolute branch through it lands off-target.
* ``stuck-active`` -- an active counter is nonzero while no call is in
  flight. Power loss between the call-site's ``ADD #1`` and ``SUB #1``
  leaks the counter forever, permanently pinning the function against
  eviction -- a durable-state leak the paper's call-stack-integrity
  scheme does not anticipate.

The block cache keeps its lookup hash table in FRAM too; its audit
flags entries whose slot bytes no longer match the block's NVM source.
Chaining legitimately patches branch immediates inside healthy cached
slots, so that comparison is only meaningful immediately after a
reboot -- when any surviving hash entry necessarily points at scrambled
SRAM -- and :func:`audit_system` runs it only then.

The data cache (:mod:`repro.datacache`) inverts the hazard: its
metadata is host-side and volatile, so nothing dangles -- instead the
*data itself* is at risk. A write-back configuration holds dirty lines
in SRAM, and a power failure silently discards every deferred store:

* ``lost-dirty-line`` -- a dirty line died in the most recent power
  cycle (post-reboot audit) or at some point of the whole campaign
  (final audit); the finding names the FRAM range whose writes were
  lost. This is the new hazard class write-back introduces: FRAM is
  internally consistent (no torn metadata to find), just *stale*, which
  is why these cases classify as ``wrong-result`` rather than ``crash``.
"""


def audit_swapram(system):
    """Audit a SwapRAM system's FRAM metadata; returns finding strings.

    Valid at any quiescent instant (after a reboot, before the next
    boot runs; or after a completed run). Reads host-side through
    memory, never through the bus, so auditing charges nothing.
    """
    runtime = system.runtime
    memory = system.board.memory
    policy = runtime.policy
    cache_lo, cache_hi = policy.base, policy.end
    findings = []
    for meta in system.meta.functions:
        fid = meta.func_id
        name = meta.name
        redir = memory.read_word(runtime.redir_base + 2 * fid)
        nvm_base = runtime.nvm_addr[fid]
        size = memory.read_word(runtime.functab_base + 4 * fid + 2)
        if redir == runtime.handler_addr:
            reloc_base = nvm_base
        elif cache_lo <= redir < cache_hi:
            reloc_base = redir
            if memory.read_bytes(redir, size) != memory.read_bytes(nvm_base, size):
                findings.append(
                    f"dangling-redirect: {name} -> {redir:#06x} "
                    "(SRAM copy does not match NVM code)"
                )
        else:
            reloc_base = None
            findings.append(f"wild-redirect: {name} -> {redir:#06x}")
        if reloc_base is not None:
            for reloc in meta.relocs:
                entry = memory.read_word(runtime.reloc_base + 2 * reloc.index)
                expected = (reloc_base + reloc.target_offset) & 0xFFFF
                if entry != expected:
                    findings.append(
                        f"stale-reloc: {name}[{reloc.index}] = {entry:#06x}, "
                        f"expected {expected:#06x}"
                    )
        active = memory.read_word(runtime.active_base + 2 * fid)
        if active:
            findings.append(f"stuck-active: {name} count {active}")
    return findings


def audit_blockcache(system):
    """Audit a block-cache system's FRAM hash table against its slots."""
    runtime = system.runtime
    memory = system.board.memory
    findings = []
    for index in range(runtime.meta.hash_entries):
        entry = runtime.hash_base + 4 * index
        stored = memory.read_word(entry)
        if stored == 0:
            continue
        block_id = stored - 1
        slot_addr = memory.read_word(entry + 2)
        block_base = memory.read_word(runtime.blocktab + 4 * block_id)
        block_size = memory.read_word(runtime.blocktab + 4 * block_id + 2)
        if memory.read_bytes(slot_addr, block_size) != memory.read_bytes(
            block_base, block_size
        ):
            findings.append(
                f"dangling-slot: block {block_id} -> {slot_addr:#06x} "
                "(slot bytes do not match the NVM block)"
            )
    return findings


def audit_datacache(system, post_reboot=False):
    """Report the FRAM ranges whose deferred writes power loss discarded.

    Immediately after a reboot the findings cover exactly the lines the
    just-finished power cycle dropped; at campaign end they cover every
    boot, indexed in order, so a case report names each lost range once.
    """
    runtime = system.runtime
    line_bytes = runtime.config.line_bytes
    findings = []
    if post_reboot:
        for record in runtime.last_drop:
            lo = record["fram_address"]
            findings.append(
                f"lost-dirty-line: {lo:#06x}..{lo + line_bytes:#06x} "
                "dropped with the power (writes silently lost)"
            )
        return findings
    for boot, dropped in enumerate(runtime.lost_lines):
        for record in dropped:
            lo = record["fram_address"]
            findings.append(
                f"lost-dirty-line: {lo:#06x}..{lo + line_bytes:#06x} "
                f"dropped at power loss {boot} (writes silently lost)"
            )
    return findings


def audit_system(system, post_reboot=False):
    """Dispatch on system shape; baselines have no durable metadata.

    *post_reboot* gates the block-cache slot-byte comparison, which is
    only sound right after a power cycle (see module docstring).
    """
    runtime = getattr(system, "runtime", None)
    if runtime is None:
        return []
    if hasattr(runtime, "redir_base"):
        return audit_swapram(system)
    if hasattr(runtime, "hash_base") and post_reboot:
        return audit_blockcache(system)
    if hasattr(runtime, "lost_lines"):
        return audit_datacache(system, post_reboot=post_reboot)
    return []
