"""Intermittent-power fault injection and crash-consistency checking.

Energy-harvesting deployments -- the niche the paper targets -- lose
power mid-execution as a matter of course. This package asks what that
does to a software caching runtime whose control metadata lives in
NVRAM but whose cached code lives in SRAM:

* :mod:`repro.faults.schedule` -- deterministic power-failure
  schedules: fixed-cycle probes, jittered harvested-energy budgets, and
  adversarial schedules aimed (via the golden run's obs timeline) at
  SwapRAM-critical windows such as the mid-``memcpy`` cache fill.
* :mod:`repro.faults.harness` -- the reboot-and-rerun loop: golden
  reference run, fused-counter fault runs, power cycles
  (FRAM persists, SRAM scrambles), a max-reboot watchdog, and the
  correct / wrong-result / crash / livelock classification.
* :mod:`repro.faults.consistency` -- the FRAM metadata audit:
  dangling redirections, stale relocations, stuck active counters,
  dangling block-cache slots.
* :mod:`repro.faults.cli` -- ``python -m repro faults sweep|replay``.
"""

from repro.faults.consistency import (
    audit_blockcache,
    audit_swapram,
    audit_system,
)
from repro.faults.harness import (
    BootRecord,
    CaseReport,
    FaultSweep,
    FaultTarget,
    GoldenRun,
    benchmark_target,
    difftest_target,
    run_case,
    run_golden,
    summarize,
)
from repro.faults.schedule import (
    AdversarialSchedule,
    FaultSchedule,
    FixedCycleSchedule,
    Fuse,
    PeriodicBudgetSchedule,
    ScheduleError,
    parse_schedule,
)

__all__ = [
    "audit_blockcache",
    "audit_swapram",
    "audit_system",
    "BootRecord",
    "CaseReport",
    "FaultSweep",
    "FaultTarget",
    "GoldenRun",
    "benchmark_target",
    "difftest_target",
    "run_case",
    "run_golden",
    "summarize",
    "AdversarialSchedule",
    "FaultSchedule",
    "FixedCycleSchedule",
    "Fuse",
    "PeriodicBudgetSchedule",
    "ScheduleError",
    "parse_schedule",
]
