"""Exact per-access miss classification: compulsory / capacity / conflict.

The classic three-C taxonomy, computed per access (not estimated) by
running three reference simulations over the same line stream:

* **infinite cache** -- a set of live lines with write invalidation.
  A miss here is **compulsory**: no finite cache of any shape avoids
  it. Two sub-kinds are counted: *cold* (first touch ever) and
  *invalidation* (re-touch after a FRAM write killed the line) --
  the second is the price of FRAM's write-through semantics, not of
  cache capacity.
* **fully-associative LRU** of the same total line count as the target
  geometry. A target miss that also misses here (but not in the
  infinite cache) is a **capacity** miss: the working set simply does
  not fit in that many lines, no matter how they are indexed.
* the **target geometry** itself (the real
  :class:`~repro.machine.fram_cache.FramReadCache` class, so the
  semantics cannot drift from the machine model). A target miss that
  the equal-size fully-associative cache would have hit is a
  **conflict** miss: set indexing, not capacity, caused it.

Invariant (asserted): ``compulsory + capacity + conflict`` equals the
target cache's total miss count, which in turn equals the ``fc.misses``
a replay at that geometry reports.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.stream import INVALIDATE, TOUCH
from repro.machine.fram_cache import FramReadCache

COMPULSORY = "compulsory"
CAPACITY = "capacity"
CONFLICT = "conflict"


@dataclass
class OwnerStats:
    """Per-function (line-owner) touch/miss tallies."""

    touches: int = 0
    hits: int = 0
    compulsory: int = 0
    capacity: int = 0
    conflict: int = 0
    invalidations: int = 0

    @property
    def misses(self):
        return self.compulsory + self.capacity + self.conflict

    def as_dict(self):
        return {
            "touches": self.touches,
            "hits": self.hits,
            "misses": self.misses,
            "compulsory": self.compulsory,
            "capacity": self.capacity,
            "conflict": self.conflict,
            "invalidations": self.invalidations,
        }


@dataclass
class Classification:
    """The full classification of one stream at one target geometry."""

    sets: int
    ways: int
    line_bytes: int
    touches: int = 0
    hits: int = 0
    compulsory: int = 0
    cold: int = 0
    invalidation: int = 0
    capacity: int = 0
    conflict: int = 0
    invalidations: int = 0
    per_owner: Dict[str, OwnerStats] = field(default_factory=dict)

    @property
    def misses(self):
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_ratio(self):
        return self.misses / self.touches if self.touches else 0.0

    def as_dict(self):
        return {
            "geometry": {
                "sets": self.sets,
                "ways": self.ways,
                "line_bytes": self.line_bytes,
                "total_bytes": self.sets * self.ways * self.line_bytes,
            },
            "touches": self.touches,
            "hits": self.hits,
            "misses": self.misses,
            "miss_ratio": self.miss_ratio,
            "compulsory": self.compulsory,
            "compulsory_cold": self.cold,
            "compulsory_invalidation": self.invalidation,
            "capacity": self.capacity,
            "conflict": self.conflict,
            "invalidations": self.invalidations,
            "per_function": {
                owner: stats.as_dict()
                for owner, stats in sorted(self.per_owner.items())
            },
        }


class MissClassifier:
    """Streaming classifier; feed events in order, read the result.

    Exposed as a class (not just :func:`classify_stream`) so the
    windowed time-series builder in :mod:`repro.analysis.causality` can
    sample cumulative counts at window boundaries mid-stream.
    """

    def __init__(self, sets, ways, line_bytes):
        self.result = Classification(sets, ways, line_bytes)
        self._live_infinite = set()
        self._seen = set()
        self._full = FramReadCache(
            sets=1, ways=sets * ways, line_bytes=line_bytes
        )
        self._target = FramReadCache(
            sets=sets, ways=ways, line_bytes=line_bytes
        )
        self._line_bytes = line_bytes

    @property
    def occupancy_lines(self):
        """Lines currently resident in the target cache."""
        return sum(len(ways) for ways in self._target._lines)

    def feed(self, op, tag):
        result = self.result
        address = tag * self._line_bytes
        if op == TOUCH:
            result.touches += 1
            infinite_hit = tag in self._live_infinite
            self._live_infinite.add(tag)
            full_hit = self._full.access(address)
            target_hit = self._target.access(address)
            if target_hit:
                result.hits += 1
                return True
            if not infinite_hit:
                result.compulsory += 1
                if tag in self._seen:
                    result.invalidation += 1
                    kind = COMPULSORY
                else:
                    self._seen.add(tag)
                    result.cold += 1
                    kind = COMPULSORY
            elif not full_hit:
                result.capacity += 1
                kind = CAPACITY
            else:
                result.conflict += 1
                kind = CONFLICT
            return kind
        if op == INVALIDATE:
            result.invalidations += 1
            self._live_infinite.discard(tag)
            self._full.invalidate(address)
            self._target.invalidate(address)
        return None

    def feed_owned(self, op, tag, owner):
        """Like :meth:`feed`, also attributing to the line's owner."""
        outcome = self.feed(op, tag)
        stats = self.result.per_owner.get(owner)
        if stats is None:
            stats = self.result.per_owner[owner] = OwnerStats()
        if op == TOUCH:
            stats.touches += 1
            if outcome is True:
                stats.hits += 1
            elif outcome == COMPULSORY:
                stats.compulsory += 1
            elif outcome == CAPACITY:
                stats.capacity += 1
            elif outcome == CONFLICT:
                stats.conflict += 1
        elif op == INVALIDATE:
            stats.invalidations += 1
        return outcome


def classify_stream(stream, sets=2, ways=2, metrics=None):
    """Classify every access of *stream* at the target geometry.

    The default geometry is the FR2355's real FRAM controller cache
    (2 sets x 2 ways x 8-byte lines). Returns a
    :class:`Classification`; its ``misses`` equals the ``fc.misses`` a
    replay at ``fram_cache=(sets, ways, line_bytes)`` reports.
    """
    classifier = MissClassifier(sets, ways, stream.line_bytes)
    owners = stream.owners
    for op, tag, _cycles in stream.events:
        classifier.feed_owned(op, tag, owners[tag])
    result = classifier.result
    assert result.hits + result.misses == result.touches
    if metrics is not None:
        metrics.counter("analysis.classified_accesses").inc(result.touches)
        for kind, value in (
            (COMPULSORY, result.compulsory),
            (CAPACITY, result.capacity),
            (CONFLICT, result.conflict),
        ):
            metrics.counter(f"analysis.misses.{kind}").inc(value)
    return result
