"""The line-reference stream: what a trace does to FRAM cache lines.

Every analysis in this package consumes the same derived object: the
ordered sequence of FRAM *line* events a captured trace induces --
``TOUCH`` for every instruction-fetch word and data read (one event per
word fetched, exactly as the replay engine's FRAM-cache mirror counts
them) and ``INVALIDATE`` for every FRAM write (word or byte: one line).
SRAM and MMIO traffic never reaches the FRAM controller and is skipped.

**Exactness contract.** :func:`build_stream` replicates
:meth:`repro.replay.engine.ReplayEngine._walk`'s cache interaction
touch for touch: classifying addresses through the same rebuilt,
hash-verified memory map, touching ``words`` consecutive word addresses
per FRAM fetch, one line per data read, and invalidating a single line
per FRAM write. Feeding the stream to a :class:`FramReadCache` of any
geometry therefore reproduces the replay engine's hit/miss totals for
that geometry bit-exactly -- the property the test suite pins.

**Scope.** Only **baseline-shaped** traces are analysable: their event
stream is the complete application reference string and every PC is
absolute. A swapram or block trace's FRAM traffic depends on the
captured cache configuration (code executes from SRAM on a hit), so
line-level analytics over it would silently describe one configuration
while claiming generality -- :func:`build_stream` refuses loudly
instead. A *write-through* data-cache trace qualifies: the recorder
taps sit above the bus-level interception, so the recorded stream is
the raw application reference string and every store reached FRAM when
recorded (the derived stream describes the uncached reference string,
exactly as for baseline). A **write-back** capture does not: dirty
lines defer the durable FRAM writes, so the recorded store events no
longer say when FRAM was written -- refused, naming the config knob.

Line *owners* come from :mod:`repro.obs.funcmap`: a line holding code
is attributed to the function occupying its base address; FRAM lines
outside any function (rodata/data/tables) are pooled as ``<data>``.
Each touch also carries the cumulative unstalled cycle count, giving
every analysis a deterministic, configuration-independent time axis.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.machine.memory import RegionKind
from repro.obs.funcmap import _static_map
from repro.replay.engine import ReplayEngine
from repro.replay.schema import ACC_WRITE

#: Line-event opcodes.
TOUCH = 0
INVALIDATE = 1

#: Pseudo-owner for FRAM lines outside any function (rodata/data).
DATA_OWNER = "<data>"


class AnalysisError(ValueError):
    """Base class for every cache-analytics problem."""


class AnalysisRefused(AnalysisError):
    """The trace cannot support exact line-level analytics."""


@dataclass
class ReferenceStream:
    """The derived line-reference stream plus its identity facts."""

    header: dict
    line_bytes: int
    #: ``(op, tag, cycles)`` triples in execution order. ``tag`` is the
    #: line number (``address >> shift``); ``cycles`` the cumulative
    #: unstalled cycle count *after* the emitting instruction.
    events: List[Tuple[int, int, int]] = field(repr=False)
    #: tag -> owning function name (or ``<data>``).
    owners: Dict[int, str] = field(repr=False)
    total_instructions: int = 0
    total_cycles: int = 0

    @property
    def shift(self):
        return self.line_bytes.bit_length() - 1

    @property
    def touches(self):
        return sum(1 for op, _, _ in self.events if op == TOUCH)

    @property
    def invalidations(self):
        return sum(1 for op, _, _ in self.events if op == INVALIDATE)

    @property
    def distinct_lines(self):
        return len({tag for op, tag, _ in self.events if op == TOUCH})

    def identity(self):
        """The facts that pin which capture this stream describes."""
        header = self.header
        return {
            "benchmark": header.get("benchmark"),
            "system": header["system"],
            "plan": header["plan"],
            "scale": header["scale"],
            "image_sha256": header["image_sha256"],
            "events": header["events"],
            "line_bytes": self.line_bytes,
        }


def build_stream(document, line_bytes=8, metrics=None):
    """Derive the line-reference stream from a parsed trace document.

    Raises :class:`AnalysisRefused` for non-baseline traces (see the
    module docstring) and propagates the replay layer's own loud
    validation (image-hash mismatch, truncated payloads) unchanged.
    """
    if line_bytes < 2 or line_bytes & (line_bytes - 1):
        raise AnalysisError(
            f"line_bytes must be a power of two >= 2, got {line_bytes}"
        )
    system = document.header.get("system")
    if system == "datacache":
        config = document.header.get("capture_config") or {}
        if config.get("mode") == "back":
            if metrics is not None:
                metrics.counter("analysis.refused").inc()
            raise AnalysisRefused(
                "this trace was captured with a write-back data cache "
                "(DataCacheConfig mode='back'): dirty lines defer the "
                "durable FRAM writes, so the recorded store events no "
                "longer say when FRAM was actually written and "
                "line-level analytics over them would be fiction; "
                "recapture with DataCacheConfig(mode='through') -- "
                "write-through traces are baseline-shaped and analyse "
                "exactly"
            )
        # Write-through: the recorder taps sit above the bus-level
        # interception, so the stream is the raw application reference
        # string -- baseline-shaped, analysable as-is.
    elif system != "baseline":
        if metrics is not None:
            metrics.counter("analysis.refused").inc()
        raise AnalysisRefused(
            f"cache analytics need a baseline trace (got {system!r}): a "
            f"{system} trace's FRAM traffic depends on the captured cache "
            f"configuration, so line-level analysis of it would describe "
            f"one configuration while claiming all; capture with "
            f"--system baseline"
        )

    engine = ReplayEngine(document)
    linked = engine.linked  # rebuilds + hash-verifies the image
    kinds = linked.memory_map._kinds
    fram = RegionKind.FRAM
    funcmap = _static_map(linked).seal()
    shift = line_bytes.bit_length() - 1

    events = []
    append = events.append
    owners = {}
    cycles = 0
    instructions = 0
    for record in document.records:
        if record is None:
            raise AnalysisRefused("hook marker in a baseline trace")
        func, pc, words, cycles_cost, accesses = record
        if func >= 0:
            raise AnalysisRefused(
                "function-relative record in a baseline trace"
            )
        instructions += 1
        cycles += cycles_cost
        if kinds[pc] is fram:
            address = pc
            for _ in range(words):
                append((TOUCH, address >> shift, cycles))
                address += 2
        for flags, addr, _value in accesses:
            if kinds[addr] is not fram:
                continue
            if flags & ACC_WRITE:
                append((INVALIDATE, addr >> shift, cycles))
            else:
                append((TOUCH, addr >> shift, cycles))

    resolve = funcmap.resolve
    for _op, tag, _cycles in events:
        if tag not in owners:
            name = resolve(tag << shift)
            owners[tag] = DATA_OWNER if name.startswith("<unmapped:") else name

    stream = ReferenceStream(
        header=document.header,
        line_bytes=line_bytes,
        events=events,
        owners=owners,
        total_instructions=instructions,
        total_cycles=cycles,
    )
    if metrics is not None:
        metrics.counter("analysis.streams").inc()
        metrics.counter("analysis.touches").inc(stream.touches)
        metrics.counter("analysis.invalidations").inc(stream.invalidations)
    return stream
