"""Exact LRU miss-ratio curves in one pass: hole-aware Mattson stacks.

**Classic Mattson.** For a pure reference string, LRU has the stack
(inclusion) property: the content of a size-``k`` cache is the ``k``
most recently used blocks, so one pass that records each access's
*stack distance* (how many distinct blocks were touched since the last
access to this one) yields the exact miss count for *every* size at
once: an access hits in a size-``k`` cache iff its distance is < ``k``.

**The wrinkle: invalidation.** FRAM writes invalidate their line, and
plain Mattson is *not* exact under invalidation. Counterexample: touch
``A B C``, invalidate ``C``, touch ``A``. A real 2-line LRU holds only
``{B}`` at that point, so ``A`` misses -- but a naive stack that simply
deleted ``C`` would see ``A`` at distance 1 and predict a hit.

**The fix: holes.** Invalidation does not shrink larger caches' recency
order, it punches a *hole* in it: the stack keeps one slot per
(live-block or hole) entry, and

* an access's effective distance counts **all** slots above it, holes
  included (in the counterexample ``A`` sits under ``[hole, B]`` at
  distance 2: hit only for 3+ lines -- exact);
* a **hit** at distance ``d``: if the topmost hole lies above the
  accessed block, that hole is consumed and a new hole appears at the
  block's old slot (smaller caches gained a free slot; larger ones did
  not); otherwise the block's slot is removed outright;
* a **miss** (cold, or re-touch after invalidation) consumes the
  topmost hole, if any -- every cache inserts, and only caches still
  full above their hole evict;
* an **invalidation** turns the block's slot into a hole in place.

The update is O(log n) per event: slot depths come from a Fenwick tree
over an append-only position counter, and the topmost hole from a
max-heap (holes are only ever consumed at their maximum, so no lazy
deletion is needed). Exactness against brute-force per-size simulation
with the real :class:`~repro.machine.fram_cache.FramReadCache` is
machine-checked by a hypothesis property test.

**Set-associativity for free.** A set-associative cache statically
partitions lines by ``tag % sets``, and each set is an independent
fully-associative LRU over its own sub-string. One profile per set
therefore yields the exact miss count of *any* ``(sets, ways)``
geometry with that set count: :func:`reuse_profile` takes ``sets`` and
``misses(ways)`` sums over the per-set stacks.
"""

from heapq import heappop, heappush

from repro.analysis.stream import INVALIDATE, TOUCH


class _Fenwick:
    """Prefix sums over slot positions, preallocated to capacity.

    Positions are assigned from an append-only counter that advances
    once per touch, so the caller sizes the tree at the stream's touch
    count and no growth path is ever needed.
    """

    def __init__(self, capacity):
        self._tree = [0] * (capacity + 1)
        self._size = capacity
        self.total = 0

    def add(self, position, delta):
        self.total += delta
        tree = self._tree
        size = self._size
        while position <= size:
            tree[position] += delta
            position += position & -position

    def prefix(self, position):
        """Sum of occupied slots at positions <= *position*."""
        total = 0
        tree = self._tree
        while position > 0:
            total += tree[position]
            position -= position & -position
        return total

    def above(self, position):
        """Occupied slots strictly above *position* -- the stack depth."""
        return self.total - self.prefix(position)


class _HoleStack:
    """One hole-aware Mattson stack; exact LRU-with-invalidation."""

    def __init__(self, capacity):
        self._fenwick = _Fenwick(capacity)
        self._position = {}  # live tag -> slot position
        self._holes = []  # max-heap (negated positions)
        self._seen = set()
        self._top = 0
        #: finite distance -> access count
        self.histogram = {}
        self.cold_misses = 0
        self.invalidation_misses = 0
        self.touches = 0

    def _push_top(self, tag):
        self._top += 1
        self._position[tag] = self._top
        self._fenwick.add(self._top, 1)

    def touch(self, tag):
        """Record one line read; returns the effective stack distance
        (``None`` for an infinite-distance miss)."""
        self.touches += 1
        position = self._position.pop(tag, None)
        if position is None:
            # Miss at every finite size: every cache inserts the line,
            # consuming its topmost free slot if it has one.
            if tag in self._seen:
                self.invalidation_misses += 1
            else:
                self._seen.add(tag)
                self.cold_misses += 1
            if self._holes:
                hole = -heappop(self._holes)
                self._fenwick.add(hole, -1)
            self._push_top(tag)
            return None
        depth = self._fenwick.above(position)
        self.histogram[depth] = self.histogram.get(depth, 0) + 1
        if self._holes and -self._holes[0] > position:
            # The topmost hole is above the block: caches small enough
            # to have absorbed that invalidation re-insert (their free
            # slot is spent), larger ones just reorder -- modelled by
            # consuming the hole and leaving one at the old slot.
            hole = -heappop(self._holes)
            self._fenwick.add(hole, -1)
            heappush(self._holes, -position)  # slot stays occupied
        else:
            self._fenwick.add(position, -1)
        self._push_top(tag)
        return depth

    def invalidate(self, tag):
        """Record one line invalidation (no-op unless the tag is live)."""
        position = self._position.pop(tag, None)
        if position is not None:
            heappush(self._holes, -position)  # slot becomes a hole


class ReuseProfile:
    """Exact miss counts for every way count of one set geometry."""

    def __init__(self, sets, line_bytes, stacks):
        self.sets = sets
        self.line_bytes = line_bytes
        self._stacks = stacks
        self.touches = sum(stack.touches for stack in stacks)
        self.cold_misses = sum(stack.cold_misses for stack in stacks)
        self.invalidation_misses = sum(
            stack.invalidation_misses for stack in stacks
        )
        histogram = {}
        for stack in stacks:
            for distance, count in stack.histogram.items():
                histogram[distance] = histogram.get(distance, 0) + count
        #: merged distance -> count map (finite distances only).
        self.histogram = histogram

    @property
    def compulsory_misses(self):
        """Misses no finite cache avoids: cold + post-invalidation."""
        return self.cold_misses + self.invalidation_misses

    def misses(self, ways):
        """Exact miss count of ``FramReadCache(sets, ways, line_bytes)``."""
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        hits = sum(
            count
            for distance, count in self.histogram.items()
            if distance < ways
        )
        return self.touches - hits

    def miss_ratio(self, ways):
        return self.misses(ways) / self.touches if self.touches else 0.0

    def curve(self):
        """The full MRC as ``(ways, misses)`` change points.

        The first point is ``ways=1``; further points appear exactly
        where the miss count drops; the last point's miss count is the
        compulsory floor (cold + invalidation misses), reached once
        ``ways`` exceeds every finite distance.
        """
        points = [(1, self.misses(1))]
        for distance in sorted(self.histogram):
            ways = distance + 1
            if ways == 1:
                continue
            points.append((ways, self.misses(ways)))
        return points


def reuse_profile(stream, sets=1, metrics=None):
    """Single-pass exact reuse profile of *stream* at *sets* sets.

    ``reuse_profile(stream, sets).misses(ways)`` equals the
    ``fc.misses`` a :class:`~repro.replay.engine.ReplayEngine` replay
    with ``fram_cache=(sets, ways, stream.line_bytes)`` reports --
    bit-exactly, for every ``ways``, from this one pass.
    """
    if sets < 1:
        raise ValueError(f"sets must be >= 1, got {sets}")
    capacity = len(stream.events) + 1
    stacks = [_HoleStack(capacity) for _ in range(sets)]
    distance_histogram = None
    if metrics is not None:
        distance_histogram = metrics.histogram("analysis.stack_distance")
    for op, tag, _cycles in stream.events:
        stack = stacks[tag % sets]
        if op == TOUCH:
            depth = stack.touch(tag)
            if distance_histogram is not None and depth is not None:
                distance_histogram.observe(depth)
        elif op == INVALIDATE:
            stack.invalidate(tag)
    profile = ReuseProfile(sets, stream.line_bytes, stacks)
    if metrics is not None:
        metrics.counter("analysis.mrc_profiles").inc()
        metrics.counter("analysis.mrc_touches").inc(profile.touches)
    return profile
