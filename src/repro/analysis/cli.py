"""The ``repro cache`` subcommand: cache-behavior analytics.

::

    python -m repro cache report crc
    python -m repro cache report crc --sets 2 --ways 2 --json
    python -m repro cache mrc crc --validate
    python -m repro cache mrc results/traces/crc-baseline-*.trace --json
    python -m repro cache thrash crc --top 10

``report`` explains one target geometry end to end: exact compulsory /
capacity / conflict miss classification, eviction causality, thrash
pairs, working-set-over-time, and the miss-ratio curve; ``mrc`` emits
just the exact LRU miss-ratio curve (``--validate`` replays three
curve points and asserts bit-exact agreement); ``thrash`` ranks the
function pairs that evict each other. The positional argument is a
benchmark name (a baseline trace is captured into the store on first
use and reused after) or a trace file path. All outputs are
deterministic: the same trace always produces byte-identical JSON.
See ``docs/analysis.md``.
"""

import argparse
import sys
from dataclasses import asdict
from pathlib import Path

from repro.analysis.report import (
    mrc_document,
    render_mrc_text,
    render_report_text,
    render_thrash_text,
    report_document,
    thrash_document,
    to_json,
    validate_mrc,
    write_perfetto,
)
from repro.analysis.stream import AnalysisError, build_stream
from repro.bench import BENCHMARK_NAMES, get_benchmark
from repro.replay.capture import CaptureError, capture_source
from repro.replay.engine import ReplayEngine
from repro.replay.schema import TraceDocument, TraceError
from repro.replay.store import DEFAULT_ROOT, TraceStore
from repro.replay.validity import ReplayRefused
from repro.toolchain import PLANS


def _parser():
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Explain cache behavior from captured replay traces: "
        "miss classification, miss-ratio curves, eviction causality.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def _common(sub, sets_default, ways=True):
        sub.add_argument(
            "program",
            help="benchmark name (crc, rc4, ...) or a baseline trace file",
        )
        sub.add_argument(
            "--store",
            default=str(DEFAULT_ROOT),
            metavar="DIR",
            help=f"trace store directory (default: {DEFAULT_ROOT})",
        )
        sub.add_argument(
            "--plan",
            choices=sorted(PLANS),
            default="unified",
            help="memory plan when capturing (default: unified)",
        )
        sub.add_argument(
            "--scale",
            type=int,
            default=1,
            help="benchmark input scale when capturing (default: 1)",
        )
        sub.add_argument(
            "--mhz",
            type=float,
            default=24,
            help="CPU clock when capturing (default: 24)",
        )
        sub.add_argument(
            "--line-bytes",
            type=int,
            default=8,
            help="FRAM cache line size in bytes (default: 8)",
        )
        sub.add_argument(
            "--sets",
            type=int,
            default=sets_default,
            help=f"cache sets (default: {sets_default})",
        )
        if ways:
            sub.add_argument(
                "--ways",
                type=int,
                default=2,
                help="cache ways per set (default: 2, the FR2355)",
            )
        sub.add_argument(
            "--json",
            action="store_true",
            help="print the sorted-key JSON document instead of text",
        )
        sub.add_argument(
            "--out",
            metavar="FILE",
            default=None,
            help="also write the JSON document to FILE",
        )

    report = commands.add_parser(
        "report", help="full cache-behavior report at one geometry"
    )
    _common(report, sets_default=2)
    report.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="CYCLES",
        help="working-set window in unstalled cycles "
        "(default: ~64 windows)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=10,
        help="thrash pairs to include (default: 10)",
    )
    report.add_argument(
        "--perfetto",
        metavar="FILE",
        default=None,
        help="write Perfetto counter tracks (occupancy, working set, "
        "cumulative misses by class) to FILE",
    )

    mrc = commands.add_parser(
        "mrc", help="exact LRU miss-ratio curve for all cache sizes"
    )
    _common(mrc, sets_default=1, ways=False)
    mrc.add_argument(
        "--ways",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="emit these way counts instead of the curve's change points",
    )
    mrc.add_argument(
        "--validate",
        action="store_true",
        help="replay three curve points and assert bit-exact agreement",
    )

    thrash = commands.add_parser(
        "thrash", help="rank function pairs that evict each other"
    )
    _common(thrash, sets_default=2)
    thrash.add_argument(
        "--top",
        type=int,
        default=20,
        help="pairs to include (default: 20)",
    )
    return parser


def _resolve_document(args, out):
    """Load the trace: a file path, or a store-cached benchmark capture."""
    path = Path(args.program)
    if path.is_file():
        return TraceDocument.load(path)
    if args.program not in BENCHMARK_NAMES:
        raise AnalysisError(
            f"{args.program!r} is neither a trace file nor a benchmark "
            f"name ({', '.join(BENCHMARK_NAMES)})"
        )
    bench = get_benchmark(args.program, args.scale)
    store = TraceStore(args.store)
    plan_config = asdict(PLANS[args.plan])
    document = store.load("baseline", plan_config, args.scale, bench.source)
    if document is not None:
        return document
    document, _, _ = capture_source(
        bench.source,
        system="baseline",
        plan_name=args.plan,
        frequency_mhz=args.mhz,
        scale=args.scale,
        benchmark=args.program,
    )
    path = store.save(document)
    print(f"captured baseline trace: {path}", file=out)
    return document


def _validation_ways(document):
    """Three spread-out curve points to replay for ``--validate``."""
    points = document["points"]
    ways = sorted({p["ways"] for p in points})
    if len(ways) <= 3:
        picked = ways
    else:
        picked = [ways[0], ways[len(ways) // 2], ways[-1]]
    # Always include a size past the last change point: the curve must
    # sit on the compulsory floor there.
    picked.append(ways[-1] + 1 if ways else 1)
    return sorted(set(picked))


def _emit(document, args, render, out):
    text = to_json(document)
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}", file=out)
    if args.json:
        print(text, file=out)
    else:
        render(document, out)


def main(argv=None, out=sys.stdout):
    parser = _parser()
    args = parser.parse_args(argv)
    try:
        trace = _resolve_document(args, out)
        stream = build_stream(trace, line_bytes=args.line_bytes)
    except (AnalysisError, TraceError, ReplayRefused, CaptureError) as error:
        print(f"error: {error}", file=out)
        return 2

    if args.command == "report":
        document = report_document(
            stream,
            sets=args.sets,
            ways=args.ways,
            window_cycles=args.window,
            top=args.top,
        )
        if args.perfetto:
            path = write_perfetto(args.perfetto, document)
            print(f"wrote {path}", file=out)
        _emit(document, args, render_report_text, out)
        return 0

    if args.command == "mrc":
        document = mrc_document(stream, sets=args.sets, way_counts=args.ways)
        if args.validate:
            engine = ReplayEngine(trace)
            try:
                document["validation"] = validate_mrc(
                    document, engine, _validation_ways(document)
                )
            except AssertionError as error:
                print(f"VALIDATION FAILED: {error}", file=out)
                return 1
        _emit(document, args, render_mrc_text, out)
        return 0

    # thrash
    document = thrash_document(
        stream, sets=args.sets, ways=args.ways, top=args.top
    )
    _emit(document, args, render_thrash_text, out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
