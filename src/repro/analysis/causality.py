"""Eviction causality, thrash pairs, and working-set-over-time curves.

**Eviction causality.** The target-geometry simulation here mirrors
:class:`~repro.machine.fram_cache.FramReadCache` line for line but also
*names* each eviction: when the line being filled pushes out a set's
LRU victim, the fill's owner (the function whose code -- or ``<data>``
-- lives on the incoming line, via :mod:`repro.obs.funcmap`) is charged
with evicting the victim's owner. Summed over the run this yields the
evictor x victim matrix behind the ``repro cache report`` causality
section and the thrash ranking.

**Thrash pairs.** A pair of functions that repeatedly evict *each
other* is the line-cache analogue of the paper's function-cache
thrashing: A's fetches push out B's lines, whose very next fetches push
A's back out. Pairs are ranked by mutual pressure -- ``min`` of the two
directed counts first (both directions must be hot for real
ping-ponging), total second -- with one-directional pressure listed
after any mutual pair.

**Working set.** :func:`working_set` cuts the stream's deterministic
time axis (cumulative unstalled cycles, which no cache configuration
can change) into fixed windows and counts distinct lines touched per
window -- the classic Denning working set over line granules.
:func:`window_series` additionally samples, at every window boundary,
the cumulative per-class miss counts and the live-line occupancy of the
target cache, feeding the Perfetto counter tracks.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.classify import MissClassifier
from repro.analysis.stream import INVALIDATE, TOUCH


@dataclass
class CausalityResult:
    """Who evicts whom, at one target geometry."""

    sets: int
    ways: int
    line_bytes: int
    evictions: int = 0
    #: (evictor_owner, victim_owner) -> directed eviction count.
    matrix: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: tag-granular re-fetch count: evictions whose victim line was
    #: touched again later (each one a miss the eviction caused).
    harmful_evictions: int = 0

    def pairs(self):
        """Function pairs ranked by mutual eviction pressure.

        One row per unordered pair ``{a, b}``: mutual pairs (both
        directions non-zero) first, ordered by ``min`` of the two
        directed counts then total; one-directional pressure follows.
        """
        combined = {}
        for (evictor, victim), count in self.matrix.items():
            key = (min(evictor, victim), max(evictor, victim))
            entry = combined.setdefault(key, [0, 0])
            if (evictor, victim) == key:
                entry[0] += count
            else:
                entry[1] += count
        rows = []
        for (first, second), (forward, backward) in combined.items():
            if first == second:
                forward, backward = forward + backward, forward + backward
            rows.append(
                {
                    "functions": [first, second],
                    "evictions": (
                        forward if first == second else forward + backward
                    ),
                    "mutual": min(forward, backward),
                    "forward": forward,  # first evicts second
                    "backward": backward,  # second evicts first
                }
            )
        rows.sort(
            key=lambda row: (
                -row["mutual"],
                -row["evictions"],
                row["functions"],
            )
        )
        return rows


def eviction_causality(stream, sets=2, ways=2, metrics=None):
    """Attribute every eviction at the target geometry to its causer."""
    owners = stream.owners
    result = CausalityResult(sets, ways, stream.line_bytes)
    matrix = result.matrix
    lines = [[] for _ in range(sets)]
    evicted_at = {}  # tag -> order index of its last eviction
    order = 0
    for op, tag, _cycles in stream.events:
        ways_list = lines[tag % sets]
        if op == TOUCH:
            order += 1
            if tag in ways_list:
                ways_list.remove(tag)
                ways_list.append(tag)
                continue
            if evicted_at.pop(tag, None) is not None:
                # This miss exists because an earlier eviction threw
                # the line out -- the eviction did real damage.
                result.harmful_evictions += 1
            ways_list.append(tag)
            if len(ways_list) > ways:
                victim = ways_list.pop(0)
                result.evictions += 1
                evicted_at[victim] = order
                key = (owners[tag], owners[victim])
                matrix[key] = matrix.get(key, 0) + 1
        elif op == INVALIDATE:
            if tag in ways_list:
                ways_list.remove(tag)
            evicted_at.pop(tag, None)  # invalidation resets causality
    if metrics is not None:
        metrics.counter("analysis.evictions").inc(result.evictions)
        metrics.counter("analysis.harmful_evictions").inc(
            result.harmful_evictions
        )
    return result


def default_window(stream, windows=64):
    """A window width (unstalled cycles) giving about *windows* windows."""
    if stream.total_cycles <= 0:
        return 1
    return max(1, -(-stream.total_cycles // windows))


@dataclass
class Window:
    """One time slice of the run, on the unstalled-cycle axis."""

    start_cycle: int
    end_cycle: int
    touches: int = 0
    working_set_lines: int = 0
    working_set_functions: int = 0
    # Cumulative-through-end-of-window counters:
    cum_hits: int = 0
    cum_compulsory: int = 0
    cum_capacity: int = 0
    cum_conflict: int = 0
    occupancy_lines: int = 0

    def as_dict(self):
        return {
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "touches": self.touches,
            "working_set_lines": self.working_set_lines,
            "working_set_bytes": None,  # filled by the caller (line size)
            "working_set_functions": self.working_set_functions,
            "cum_hits": self.cum_hits,
            "cum_compulsory": self.cum_compulsory,
            "cum_capacity": self.cum_capacity,
            "cum_conflict": self.cum_conflict,
            "occupancy_lines": self.occupancy_lines,
        }


def window_series(stream, sets=2, ways=2, window_cycles=None) -> List[Window]:
    """Windowed working set + cumulative classified misses + occupancy.

    One pass: a :class:`MissClassifier` runs alongside the window
    bookkeeping and is sampled at each boundary, so the cumulative
    curves are exact, not interpolated. The final window is clamped to
    the run's last cycle.
    """
    if window_cycles is None:
        window_cycles = default_window(stream)
    if window_cycles < 1:
        raise ValueError(f"window_cycles must be >= 1, got {window_cycles}")
    classifier = MissClassifier(sets, ways, stream.line_bytes)
    owners = stream.owners
    windows = []
    current = None
    tags_in_window = set()
    funcs_in_window = set()

    def close(window):
        result = classifier.result
        window.working_set_lines = len(tags_in_window)
        window.working_set_functions = len(funcs_in_window)
        window.cum_hits = result.hits
        window.cum_compulsory = result.compulsory
        window.cum_capacity = result.capacity
        window.cum_conflict = result.conflict
        window.occupancy_lines = classifier.occupancy_lines
        windows.append(window)

    for op, tag, cycles in stream.events:
        index = cycles // window_cycles
        start = index * window_cycles
        if current is None or start > current.start_cycle:
            if current is not None:
                close(current)
            current = Window(start, start + window_cycles)
            tags_in_window = set()
            funcs_in_window = set()
        classifier.feed(op, tag)
        if op == TOUCH:
            current.touches += 1
            tags_in_window.add(tag)
            funcs_in_window.add(owners[tag])
    if current is not None:
        current.end_cycle = min(current.end_cycle, stream.total_cycles)
        close(current)
    return windows


def working_set(stream, window_cycles=None):
    """Just the working-set-over-time curve (distinct lines per window)."""
    return [
        {
            "start_cycle": window.start_cycle,
            "end_cycle": window.end_cycle,
            "touches": window.touches,
            "working_set_lines": window.working_set_lines,
            "working_set_bytes": window.working_set_lines * stream.line_bytes,
            "working_set_functions": window.working_set_functions,
        }
        for window in window_series(stream, window_cycles=window_cycles)
    ]
