"""Deterministic report documents: JSON, text, and Perfetto counters.

Every document here is a plain dict of analysis facts -- no wall-clock,
no environment, nothing order-unstable -- serialized with
``json.dumps(..., sort_keys=True, indent=2)`` (the ``repro sweep status
--json`` convention), so repeated runs over the same trace are
byte-identical: the property the CI ``analysis-smoke`` job diffs.

The Perfetto export rides the shared :mod:`repro.trace_event` helpers:
one process, counter ("C") tracks sampled at every working-set window
boundary -- target-cache occupancy, working-set lines, and cumulative
misses by class -- on the same microsecond axis the guest-run exporter
uses (``cycles / frequency_mhz``).
"""

import json

from repro.analysis.causality import (
    default_window,
    eviction_causality,
    window_series,
)
from repro.analysis.classify import classify_stream
from repro.analysis.mrc import reuse_profile
from repro.trace_event import metadata_events, write_trace

REPORT_SCHEMA = "repro-cache-report/1"
MRC_SCHEMA = "repro-cache-mrc/1"
THRASH_SCHEMA = "repro-cache-thrash/1"

_PID = 1


def to_json(document):
    """The canonical byte-stable serialization of a report document."""
    return json.dumps(document, sort_keys=True, indent=2)


def _geometry(sets, ways, line_bytes):
    return {
        "sets": sets,
        "ways": ways,
        "line_bytes": line_bytes,
        "total_bytes": sets * ways * line_bytes,
    }


def mrc_document(stream, sets=1, way_counts=None, metrics=None):
    """The ``repro cache mrc`` document: the exact LRU miss-ratio curve.

    Without *way_counts* the points are the curve's change points (the
    only places the exact miss count moves); with it, exactly the
    requested way counts.
    """
    profile = reuse_profile(stream, sets=sets, metrics=metrics)
    if way_counts is None:
        points = profile.curve()
    else:
        points = [(ways, profile.misses(ways)) for ways in way_counts]
    return {
        "schema": MRC_SCHEMA,
        "trace": stream.identity(),
        "sets": sets,
        "line_bytes": stream.line_bytes,
        "touches": profile.touches,
        "cold_misses": profile.cold_misses,
        "invalidation_misses": profile.invalidation_misses,
        "compulsory_floor": profile.compulsory_misses,
        "points": [
            {
                "ways": ways,
                "lines": sets * ways,
                "cache_bytes": sets * ways * stream.line_bytes,
                "misses": misses,
                "miss_ratio": misses / profile.touches
                if profile.touches
                else 0.0,
            }
            for ways, misses in points
        ],
    }


def validate_mrc(mrc, engine, way_counts):
    """Cross-check MRC points against live replays; returns a validation
    section (also asserting -- a mismatch is a bug, not a report row)."""
    checks = []
    for ways in way_counts:
        point = next(
            (p for p in mrc["points"] if p["ways"] == ways), None
        )
        predicted = (
            point["misses"]
            if point is not None
            else _misses_at(mrc, ways)
        )
        outcome = engine.replay(
            fram_cache=(mrc["sets"], ways, mrc["line_bytes"])
        )
        measured = outcome.board.bus.fram_cache.misses
        if predicted != measured:
            raise AssertionError(
                f"MRC exactness violated at sets={mrc['sets']} ways={ways}: "
                f"predicted {predicted}, replay measured {measured}"
            )
        checks.append({"ways": ways, "misses": measured, "exact": True})
    return {"replayed": checks}


def _misses_at(mrc, ways):
    """Miss count at *ways* from a change-point curve (step function)."""
    misses = None
    for point in mrc["points"]:
        if point["ways"] <= ways:
            misses = point["misses"]
        else:
            break
    if misses is None:  # below the first change point: every touch misses
        return mrc["touches"]
    return misses


def thrash_document(stream, sets=2, ways=2, top=20, metrics=None):
    """The ``repro cache thrash`` document: eviction-causality ranking."""
    causality = eviction_causality(stream, sets=sets, ways=ways, metrics=metrics)
    return {
        "schema": THRASH_SCHEMA,
        "trace": stream.identity(),
        "geometry": _geometry(sets, ways, stream.line_bytes),
        "evictions": causality.evictions,
        "harmful_evictions": causality.harmful_evictions,
        "pairs": causality.pairs()[:top],
    }


def report_document(
    stream, sets=2, ways=2, window_cycles=None, top=20, metrics=None
):
    """The full ``repro cache report`` document."""
    if window_cycles is None:
        window_cycles = default_window(stream)
    classification = classify_stream(
        stream, sets=sets, ways=ways, metrics=metrics
    )
    causality = eviction_causality(stream, sets=sets, ways=ways)
    windows = window_series(
        stream, sets=sets, ways=ways, window_cycles=window_cycles
    )
    window_rows = []
    for window in windows:
        row = window.as_dict()
        row["working_set_bytes"] = (
            window.working_set_lines * stream.line_bytes
        )
        window_rows.append(row)
    mrc = mrc_document(stream, sets=sets)
    return {
        "schema": REPORT_SCHEMA,
        "trace": stream.identity(),
        "frequency_mhz": stream.header["frequency_mhz"],
        "geometry": _geometry(sets, ways, stream.line_bytes),
        "stream": {
            "instructions": stream.total_instructions,
            "unstalled_cycles": stream.total_cycles,
            "touches": stream.touches,
            "invalidations": stream.invalidations,
            "distinct_lines": stream.distinct_lines,
        },
        "classification": classification.as_dict(),
        "causality": {
            "evictions": causality.evictions,
            "harmful_evictions": causality.harmful_evictions,
            "pairs": causality.pairs()[:top],
        },
        "working_set": {
            "window_cycles": window_cycles,
            "peak_lines": max(
                (w["working_set_lines"] for w in window_rows), default=0
            ),
            "windows": window_rows,
        },
        "mrc": mrc,
    }


def render_report_text(document, out):
    """Human-readable rendering of a report document."""
    trace = document["trace"]
    geometry = document["geometry"]
    classification = document["classification"]
    print(
        f"cache report : {trace.get('benchmark') or 'program'} "
        f"({trace['system']}/{trace['plan']}, scale {trace['scale']})",
        file=out,
    )
    print(
        f"geometry     : {geometry['sets']} sets x {geometry['ways']} ways "
        f"x {geometry['line_bytes']} B lines "
        f"({geometry['total_bytes']} bytes)",
        file=out,
    )
    stream = document["stream"]
    print(
        f"stream       : {stream['touches']} line touches, "
        f"{stream['invalidations']} invalidations, "
        f"{stream['distinct_lines']} distinct lines",
        file=out,
    )
    print(
        f"misses       : {classification['misses']} "
        f"({classification['miss_ratio']:.1%}) = "
        f"{classification['compulsory']} compulsory "
        f"({classification['compulsory_cold']} cold + "
        f"{classification['compulsory_invalidation']} invalidation) + "
        f"{classification['capacity']} capacity + "
        f"{classification['conflict']} conflict",
        file=out,
    )
    causality = document["causality"]
    print(
        f"evictions    : {causality['evictions']} "
        f"({causality['harmful_evictions']} caused a later miss)",
        file=out,
    )
    working = document["working_set"]
    print(
        f"working set  : peak {working['peak_lines']} lines over "
        f"{len(working['windows'])} windows of "
        f"{working['window_cycles']} cycles",
        file=out,
    )
    print("top thrash pairs:", file=out)
    for row in causality["pairs"][:5]:
        first, second = row["functions"]
        if first == second:
            print(
                f"  {first}: {row['evictions']} self-evictions",
                file=out,
            )
        else:
            print(
                f"  {first} <-> {second}: {row['evictions']} evictions "
                f"(mutual {row['mutual']})",
                file=out,
            )
    print("miss-ratio curve (change points):", file=out)
    for point in document["mrc"]["points"]:
        print(
            f"  {point['cache_bytes']:>6} B ({point['lines']} lines): "
            f"{point['misses']} misses ({point['miss_ratio']:.1%})",
            file=out,
        )


def render_mrc_text(document, out):
    trace = document["trace"]
    print(
        f"mrc          : {trace.get('benchmark') or 'program'}, "
        f"{document['sets']} set(s), {document['line_bytes']} B lines, "
        f"{document['touches']} touches",
        file=out,
    )
    print(
        f"floor        : {document['compulsory_floor']} compulsory misses "
        f"({document['cold_misses']} cold + "
        f"{document['invalidation_misses']} invalidation)",
        file=out,
    )
    for point in document["points"]:
        print(
            f"  {point['cache_bytes']:>6} B ({point['lines']:>3} lines): "
            f"{point['misses']:>8} misses ({point['miss_ratio']:.1%})",
            file=out,
        )
    validation = document.get("validation")
    if validation:
        print(
            f"validated    : {len(validation['replayed'])} sizes replayed, "
            f"all exact",
            file=out,
        )


def render_thrash_text(document, out):
    trace = document["trace"]
    geometry = document["geometry"]
    print(
        f"thrash       : {trace.get('benchmark') or 'program'} at "
        f"{geometry['sets']}x{geometry['ways']}x{geometry['line_bytes']} B",
        file=out,
    )
    print(
        f"evictions    : {document['evictions']} "
        f"({document['harmful_evictions']} harmful)",
        file=out,
    )
    for row in document["pairs"]:
        first, second = row["functions"]
        if first == second:
            print(
                f"  {first}: {row['evictions']} self-evictions",
                file=out,
            )
        else:
            print(
                f"  {first} <-> {second}: {row['evictions']} "
                f"(mutual {row['mutual']}, {first}->{second} "
                f"{row['forward']}, {second}->{first} {row['backward']})",
                file=out,
            )


def perfetto_counter_trace(document):
    """Perfetto counter tracks from a report document's window series.

    Occupancy, working set, and cumulative misses by class, one sample
    per window boundary, on the simulated-microsecond axis.
    """
    trace_meta = document["trace"]
    # The unstalled-cycle axis is configuration-independent; dividing by
    # the capture clock renders it as simulated microseconds, matching
    # the guest-run exporter's axis.
    scale = 1.0 / document["frequency_mhz"]
    events = metadata_events(_PID, "cache analysis")
    for window in document["working_set"]["windows"]:
        ts = window["end_cycle"] * scale
        for name, value in (
            ("fram-cache-occupancy-lines", window["occupancy_lines"]),
            ("working-set-lines", window["working_set_lines"]),
            ("cum-misses-compulsory", window["cum_compulsory"]),
            ("cum-misses-capacity", window["cum_capacity"]),
            ("cum-misses-conflict", window["cum_conflict"]),
            ("cum-hits", window["cum_hits"]),
        ):
            events.append(
                {
                    "ph": "C",
                    "pid": _PID,
                    "ts": ts,
                    "name": name,
                    "args": {"value": value},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.analysis",
            "benchmark": trace_meta.get("benchmark"),
            "geometry": document["geometry"],
        },
    }


def write_perfetto(path, document):
    """Validate-and-write the counter trace; returns the path."""
    return write_trace(path, perfetto_counter_trace(document))
