"""Cache-behavior analytics over captured replay traces.

The replay layer (PR 6) can *run* a cache configuration fast; this
package explains **why** it misses. From one captured baseline trace it
derives, exactly:

* per-access **miss classification** -- compulsory / capacity /
  conflict, via infinite-cache and fully-associative-LRU reference
  simulations (:mod:`repro.analysis.classify`);
* single-pass **Mattson reuse profiles** -- exact LRU miss counts for
  *every* way count from one pass, hole-aware so FRAM write
  invalidations stay exact (:mod:`repro.analysis.mrc`);
* **eviction causality** -- which function's lines evict which, thrash
  pairs, and working-set-over-time curves
  (:mod:`repro.analysis.causality`);
* deterministic JSON / text / Perfetto reports and the
  ``python -m repro cache`` CLI (:mod:`repro.analysis.report`,
  :mod:`repro.analysis.cli`).

Every number is exact, not sampled: the analyses replicate the replay
engine's FRAM-line mirror touch for touch, and the test suite pins the
MRC bit-exactly against :class:`~repro.replay.engine.ReplayEngine` runs
at measured geometries.
"""

from repro.analysis.causality import eviction_causality, window_series, working_set
from repro.analysis.classify import classify_stream
from repro.analysis.mrc import reuse_profile
from repro.analysis.stream import (
    AnalysisError,
    AnalysisRefused,
    INVALIDATE,
    TOUCH,
    ReferenceStream,
    build_stream,
)

__all__ = [
    "AnalysisError",
    "AnalysisRefused",
    "INVALIDATE",
    "TOUCH",
    "ReferenceStream",
    "build_stream",
    "classify_stream",
    "eviction_causality",
    "reuse_profile",
    "window_series",
    "working_set",
]
